package sparse

import (
	"math/rand"
	"testing"

	"spray"
	"spray/internal/num"
)

func TestTMulVecAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := FromCOO(randomCOO(rng, 300, 250, 2500))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(rng.Intn(7) - 3)
	}
	want := make([]float64, a.Cols)
	a.TMulVecSeq(x, want)
	for _, st := range spray.AllStrategies() {
		for _, threads := range []int{1, 4} {
			team := spray.NewTeam(threads)
			y := make([]float64, a.Cols)
			r := TMulVec(team, st, a, x, y)
			team.Close()
			if d := num.MaxAbsDiff(y, want); d != 0 {
				t.Errorf("%s threads=%d: diff %v", st, threads, d)
			}
			if r == nil {
				t.Errorf("%s: nil reducer", st)
			}
		}
	}
}

func TestRunTMulVecIterated(t *testing.T) {
	// PageRank-style repeated application through one reused reducer.
	rng := rand.New(rand.NewSource(12))
	a := FromCOO(randomCOO(rng, 200, 200, 1500))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(rng.Intn(5))
	}
	const rounds = 4
	want := make([]float64, a.Cols)
	for r := 0; r < rounds; r++ {
		a.TMulVecSeq(x, want)
	}
	team := spray.NewTeam(3)
	defer team.Close()
	y := make([]float64, a.Cols)
	red := spray.New(spray.BlockCAS(64), y, team.Size())
	for r := 0; r < rounds; r++ {
		RunTMulVec(team, red, a, x)
	}
	if d := num.MaxAbsDiff(y, want); d != 0 {
		t.Errorf("iterated diff %v", d)
	}
}

func TestRunTMulVecSchedMatches(t *testing.T) {
	// Chunked schedules give mid-region-drain reducers (keeper, binned
	// wrappers) boundaries inside each member's range; results must not
	// depend on the schedule or on binning. Small-integer values keep
	// every summation order exact, so the comparison is bitwise even
	// though coalescing reassociates cross-row duplicates.
	rng := rand.New(rand.NewSource(14))
	c := NewCOO[float64](600, 600)
	for i := 0; i < 600; i++ {
		c.Add(i, i, float64(rng.Intn(5)+1))
		for e := 0; e < 7; e++ {
			if j := i + rng.Intn(81) - 40; j >= 0 && j < 600 {
				c.Add(i, j, float64(rng.Intn(9)-4))
			}
		}
	}
	a := FromCOO(c)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(rng.Intn(7) - 3)
	}
	want := make([]float64, a.Cols)
	a.TMulVecSeq(x, want)
	for _, st := range []spray.Strategy{
		spray.Keeper(),
		spray.Binned(spray.Keeper()),
		spray.Binned(spray.Atomic()),
	} {
		for _, sched := range []spray.Schedule{
			spray.Static(), spray.StaticChunk(32), spray.Dynamic(16),
		} {
			team := spray.NewTeam(3)
			y := make([]float64, a.Cols)
			red := spray.New(st, y, team.Size())
			RunTMulVecSched(team, red, a, x, sched)
			team.Close()
			if d := num.MaxAbsDiff(y, want); d != 0 {
				t.Errorf("%s: diff %v", st, d)
			}
		}
	}
}

func TestTMulVecAccumulatesIntoExisting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := FromCOO(randomCOO(rng, 50, 60, 300))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	want := make([]float64, a.Cols)
	for i := range want {
		want[i] = 10
	}
	a.TMulVecSeq(x, want)
	team := spray.NewTeam(2)
	defer team.Close()
	y := make([]float64, a.Cols)
	for i := range y {
		y[i] = 10
	}
	TMulVec(team, spray.Keeper(), a, x, y)
	if d := num.MaxAbsDiff(y, want); d != 0 {
		t.Errorf("+= semantics broken: diff %v", d)
	}
}

func TestTMulVecDimensionPanic(t *testing.T) {
	a := Random[float64](10, 12, 30, 1)
	team := spray.NewTeam(2)
	defer team.Close()
	defer func() {
		if recover() == nil {
			t.Error("mismatched y did not panic")
		}
	}()
	TMulVec(team, spray.Atomic(), a, make([]float64, 10), make([]float64, 10))
}

package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"spray/internal/num"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := FromCOO(randomCOO(rng, 30, 40, 150))
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatalf("shape/nnz changed: %dx%d/%d vs %dx%d/%d",
			b.Rows, b.Cols, b.NNZ(), a.Rows, a.Cols, a.NNZ())
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.Float64()
	}
	ya := make([]float64, a.Rows)
	yb := make([]float64, a.Rows)
	a.MulVec(x, ya)
	b.MulVec(x, yb)
	if d := num.MaxAbsDiff(ya, yb); d > 1e-9 {
		t.Errorf("round-trip product diff %v", d)
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% finite element stiffness, lower triangle
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 1.5
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 5 { // 3 diagonal + 2 mirrored off-diagonal
		t.Errorf("NNZ=%d, want 5", a.NNZ())
	}
	d := denseOf(a)
	if d[0][1] != -1 || d[1][0] != -1 {
		t.Errorf("symmetric entries not mirrored: %v", d)
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := denseOf(a)
	if d[1][0] != 3 || d[0][1] != -3 {
		t.Errorf("skew expansion wrong: %v", d)
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 3
2 1
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := denseOf(a)
	if d[0][2] != 1 || d[1][0] != 1 {
		t.Errorf("pattern values wrong: %v", d)
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":     "%%NotMM matrix coordinate real general\n1 1 0\n",
		"array format":   "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"complex values": "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"truncated":      "%%MatrixMarket matrix coordinate real general\n5 5 3\n1 1 1.0\n",
		"out of range":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"bad entry":      "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"no size":        "%%MatrixMarket matrix coordinate real general\n% only comments\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket[float64](strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMatrixMarketCommentsAndBlankLines(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% comment one

% comment two
2 2 2

1 1 1.5
% interleaved comment
2 2 2.5
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 2 {
		t.Errorf("NNZ=%d", a.NNZ())
	}
}

func TestMatrixMarketCommentOnlyBody(t *testing.T) {
	// A header followed by nothing but comments (the last one without a
	// trailing newline) must report a missing size line, not hang or
	// panic.
	for name, src := range map[string]string{
		"comments newline":    "%%MatrixMarket matrix coordinate real general\n% a\n% b\n",
		"comments eof":        "%%MatrixMarket matrix coordinate real general\n% a\n% trailing comment, no newline",
		"blank then comments": "%%MatrixMarket matrix coordinate real general\n\n\n% only this\n",
	} {
		_, err := ReadMatrixMarket[float64](strings.NewReader(src))
		if err == nil || !strings.Contains(err.Error(), "size line") {
			t.Errorf("%s: err = %v, want missing-size-line error", name, err)
		}
	}
}

func TestMatrixMarketPatternSymmetric(t *testing.T) {
	// Pattern + symmetric combine: unit values AND mirrored expansion,
	// with diagonal entries stored once.
	src := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
1 1
2 1
3 2
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 5 { // 1 diagonal + 2 mirrored pairs
		t.Errorf("NNZ=%d, want 5", a.NNZ())
	}
	d := denseOf(a)
	for _, at := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {2, 1}, {1, 2}} {
		if d[at[0]][at[1]] != 1 {
			t.Errorf("entry %v = %v, want unit", at, d[at[0]][at[1]])
		}
	}
	if d[2][2] != 0 {
		t.Errorf("phantom diagonal entry: %v", d[2][2])
	}
}

func TestMatrixMarketHugeSizeRejected(t *testing.T) {
	// Dimensions at or past int32 overflow must be rejected up front:
	// zero-based ids are stored as int32 and CSR conversion allocates
	// rows+1 pointers, so accepting 2^31 would turn a 50-byte file into
	// a multi-gigabyte allocation.
	for name, size := range map[string]string{
		"rows 2^31":     "2147483648 10 1",
		"cols 2^31":     "10 2147483648 1",
		"rows > int64":  "99999999999999999999 10 1",
		"negative rows": "-5 10 1",
		"negative nnz":  "10 10 -1",
	} {
		src := "%%MatrixMarket matrix coordinate real general\n" + size + "\n1 1 1.0\n"
		if _, err := ReadMatrixMarket[float64](strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted size line %q", name, size)
		}
	}
	// The accept side: a large-but-sane dimension still parses. (The
	// maximal legal dimension 2^31-1 would allocate 16 GB of row
	// pointers during CSR conversion, so it is not exercised here.)
	src := "%%MatrixMarket matrix coordinate real general\n1000000 1000000 1\n1000000 1000000 2.5\n"
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 1000000 || a.NNZ() != 1 {
		t.Errorf("shape %dx%d nnz %d", a.Rows, a.Cols, a.NNZ())
	}
}

func TestMatrixMarketIndexOverflowEntry(t *testing.T) {
	// A 1-based index that overflows int64 must fail the entry parse
	// (not wrap around into range).
	src := "%%MatrixMarket matrix coordinate real general\n10 10 1\n99999999999999999999 1 1.0\n"
	_, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "indices") {
		t.Errorf("err = %v, want bad-indices error", err)
	}
}

func TestMatrixMarketTruncation(t *testing.T) {
	// EOF variants around the entry section.
	for name, src := range map[string]string{
		"eof after size":     "%%MatrixMarket matrix coordinate real general\n5 5 2\n",
		"eof mid entries":    "%%MatrixMarket matrix coordinate real general\n5 5 3\n1 1 1.0\n2 2 2.0\n",
		"partial last entry": "%%MatrixMarket matrix coordinate real general\n5 5 2\n1 1 1.0\n2 2",
	} {
		if _, err := ReadMatrixMarket[float64](strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// A complete final entry without a trailing newline is legal.
	src := "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 2.0"
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 2 {
		t.Errorf("NNZ=%d, want 2", a.NNZ())
	}
}

func TestMatrixMarketNeverPanicsOnGarbage(t *testing.T) {
	f := func(junk string) bool {
		// Any input may produce an error but must never panic.
		ReadMatrixMarket[float64](strings.NewReader(junk))
		ReadMatrixMarket[float64](strings.NewReader("%%MatrixMarket matrix coordinate real general\n" + junk))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

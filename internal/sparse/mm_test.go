package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"spray/internal/num"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := FromCOO(randomCOO(rng, 30, 40, 150))
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatalf("shape/nnz changed: %dx%d/%d vs %dx%d/%d",
			b.Rows, b.Cols, b.NNZ(), a.Rows, a.Cols, a.NNZ())
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.Float64()
	}
	ya := make([]float64, a.Rows)
	yb := make([]float64, a.Rows)
	a.MulVec(x, ya)
	b.MulVec(x, yb)
	if d := num.MaxAbsDiff(ya, yb); d > 1e-9 {
		t.Errorf("round-trip product diff %v", d)
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% finite element stiffness, lower triangle
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 1.5
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 5 { // 3 diagonal + 2 mirrored off-diagonal
		t.Errorf("NNZ=%d, want 5", a.NNZ())
	}
	d := denseOf(a)
	if d[0][1] != -1 || d[1][0] != -1 {
		t.Errorf("symmetric entries not mirrored: %v", d)
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := denseOf(a)
	if d[1][0] != 3 || d[0][1] != -3 {
		t.Errorf("skew expansion wrong: %v", d)
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 3
2 1
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := denseOf(a)
	if d[0][2] != 1 || d[1][0] != 1 {
		t.Errorf("pattern values wrong: %v", d)
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":     "%%NotMM matrix coordinate real general\n1 1 0\n",
		"array format":   "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"complex values": "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"truncated":      "%%MatrixMarket matrix coordinate real general\n5 5 3\n1 1 1.0\n",
		"out of range":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"bad entry":      "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"no size":        "%%MatrixMarket matrix coordinate real general\n% only comments\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket[float64](strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMatrixMarketCommentsAndBlankLines(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% comment one

% comment two
2 2 2

1 1 1.5
% interleaved comment
2 2 2.5
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 2 {
		t.Errorf("NNZ=%d", a.NNZ())
	}
}

func TestMatrixMarketNeverPanicsOnGarbage(t *testing.T) {
	f := func(junk string) bool {
		// Any input may produce an error but must never panic.
		ReadMatrixMarket[float64](strings.NewReader(junk))
		ReadMatrixMarket[float64](strings.NewReader("%%MatrixMarket matrix coordinate real general\n" + junk))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

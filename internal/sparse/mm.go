package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"spray/internal/num"
)

// Matrix Market exchange format support (coordinate real/integer/pattern,
// general or symmetric), enough to load the paper's s3dkt3m2 and debr
// inputs from their published files and to export generated matrices.

// ReadMatrixMarket parses a Matrix Market coordinate-format stream into a
// CSR matrix. Symmetric and skew-symmetric storage is expanded to general
// form; pattern matrices get unit values.
func ReadMatrixMarket[T num.Float](r io.Reader) (*CSR[T], error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket matrix header: %q", strings.TrimSpace(header))
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket format %q (only coordinate)", fields[2])
	}
	valType := fields[3] // real, integer, pattern
	switch valType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket value type %q", valType)
	}
	sym := fields[4] // general, symmetric, skew-symmetric
	switch sym {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", sym)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: missing MatrixMarket size line: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, err)
		}
		// Zero-based row/column ids are stored as int32, and CSR
		// conversion allocates rows+1 row pointers, so a dimension of
		// 2^31 (whose last zero-based id still fits) would let a
		// few-byte header demand a multi-gigabyte allocation: cap both
		// dimensions strictly below int32 overflow.
		const maxDim = 1<<31 - 1
		if rows < 0 || cols < 0 || nnz < 0 || rows > maxDim || cols > maxDim {
			return nil, fmt.Errorf("sparse: unreasonable MatrixMarket size %dx%d nnz %d", rows, cols, nnz)
		}
		break
	}
	c := NewCOO[T](rows, cols)
	read := 0
	for read < nnz {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: MatrixMarket truncated after %d of %d entries: %w", read, nnz, err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		parts := strings.Fields(line)
		want := 3
		if valType == "pattern" {
			want = 2
		}
		if len(parts) < want {
			return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", line)
		}
		i, err1 := strconv.Atoi(parts[0])
		j, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket indices %q", line)
		}
		v := 1.0
		if valType != "pattern" {
			v, err = strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad MatrixMarket value %q", line)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: MatrixMarket entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		i, j = i-1, j-1
		c.Add(i, j, T(v))
		if i != j {
			switch sym {
			case "symmetric":
				c.Add(j, i, T(v))
			case "skew-symmetric":
				c.Add(j, i, T(-v))
			}
		}
		read++
	}
	return FromCOO(c), nil
}

// WriteMatrixMarket writes a CSR matrix in coordinate real general form.
func WriteMatrixMarket[T num.Float](w io.Writer, a *CSR[T]) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.9g\n", i+1, a.Col[k]+1, float64(a.Val[k])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"spray/internal/telemetry"
)

func TestFlightRingDropsOldest(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 7; i++ {
		f.Emit(telemetry.Event{Source: "anomaly", Message: fmt.Sprintf("ev%d", i)})
	}
	if f.Len() != 4 {
		t.Fatalf("len = %d, want 4", f.Len())
	}
	if f.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", f.Dropped())
	}
	es := f.Entries()
	if es[0].Event.Message != "ev3" || es[3].Event.Message != "ev6" {
		t.Errorf("ring order wrong: first %q last %q", es[0].Event.Message, es[3].Event.Message)
	}
	for i := 1; i < len(es); i++ {
		if es[i].Seq != es[i-1].Seq+1 {
			t.Errorf("seq gap: %d after %d", es[i].Seq, es[i-1].Seq)
		}
	}
}

func TestFlightDumpCarriesSnapshotCounters(t *testing.T) {
	f := NewFlight(8)
	f.RecordSnapshot([]Sample{testSample("atomic", 5, 99)})
	f.Emit(telemetry.Event{Source: "panic", Time: time.Now(), Message: "boom"})

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		DumpedAt time.Time `json:"dumped_at"`
		Dropped  uint64    `json:"dropped"`
		Entries  []struct {
			Kind    string `json:"kind"`
			Samples []struct {
				Strategy string            `json:"strategy"`
				Counters map[string]uint64 `json:"counters"`
			} `json:"samples"`
			Event *telemetry.Event `json:"event"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, buf.String())
	}
	if len(dump.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(dump.Entries))
	}
	snap := dump.Entries[0]
	if snap.Kind != "snapshot" || len(snap.Samples) != 1 {
		t.Fatalf("first entry %+v, want one-sample snapshot", snap)
	}
	if snap.Samples[0].Strategy != "atomic" {
		t.Errorf("snapshot strategy %q", snap.Samples[0].Strategy)
	}
	// Counters must be rendered by name in the dump (CounterMap fill).
	if snap.Samples[0].Counters["cas-retries"] != 99 {
		t.Errorf("snapshot counters %v, want cas-retries=99", snap.Samples[0].Counters)
	}
	if dump.Entries[1].Kind != "panic" || dump.Entries[1].Event == nil {
		t.Errorf("second entry %+v, want panic event", dump.Entries[1])
	}
	if dump.DumpedAt.IsZero() {
		t.Error("dumped_at missing")
	}
}

func TestEventRingSeqAndDrop(t *testing.T) {
	r := NewEventRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(telemetry.Event{Source: "anomaly"})
	}
	if r.Seq() != 5 {
		t.Errorf("seq = %d, want 5", r.Seq())
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	es := r.Events()
	if len(es) != 3 || es[0].Seq != 3 || es[2].Seq != 5 {
		t.Errorf("events %+v, want seqs 3..5", es)
	}
	// A pre-stamped sequence number (an event already numbered by another
	// ring) is preserved.
	r.Emit(telemetry.Event{Seq: 42})
	es = r.Events()
	if es[len(es)-1].Seq != 42 {
		t.Errorf("pre-stamped seq overwritten: %d", es[len(es)-1].Seq)
	}
}

func TestDiagnosticsEnablePollAndPanic(t *testing.T) {
	Disable()
	t.Cleanup(Disable)
	id := RegisterProvider(func() Sample { return testSample("keeper", 3, 0) })
	t.Cleanup(func() { UnregisterProvider(id) })

	d := Enable(Options{}) // no poller: tests tick manually
	if Enabled() != d {
		t.Fatal("Enabled did not return the instance")
	}
	if again := Enable(Options{FlightCapacity: 1}); again != d {
		t.Error("second Enable built a new instance")
	}
	d.Poll()
	if d.Flight.Len() != 1 {
		t.Errorf("flight after poll: %d entries", d.Flight.Len())
	}

	d.OnPanic(2, "index out of range")
	evs := d.Events.Events()
	if len(evs) != 1 || evs[0].Source != "panic" {
		t.Fatalf("events after panic: %+v", evs)
	}
	// The flight must now hold: poll snapshot, panic event, panic snapshot.
	es := d.Flight.Entries()
	if len(es) != 3 || es[1].Kind != "panic" || es[2].Kind != "snapshot" {
		t.Fatalf("flight after panic: %d entries, kinds %v", len(es), kinds(es))
	}
	if len(es[2].Samples) != 1 || es[2].Samples[0].Strategy != "keeper" {
		t.Errorf("panic snapshot lost the provider: %+v", es[2].Samples)
	}
}

func kinds(es []FlightEntry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Kind
	}
	return out
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"spray/internal/hotspot"
)

// Index-space contention exposition: the spray_hotline_* series and the
// /debug/spray/heatmap endpoint, fed by the Sample.Hot profiles of
// providers whose reducer has the hotspot profiler enabled.
//
// Series (all absent-valued strategies are simply omitted; the TYPE
// headers always render so scrapes validate):
//
//	spray_hotline_events_total{strategy,class}   counter, exact per-class
//	                                             conflict event weights
//	spray_hotline_sampled_total{strategy,class}  counter, decimated weight
//	                                             that reached the sketch
//	spray_hotline_top_line{strategy,rank}        gauge, cache-line number
//	                                             of hot line #rank
//	spray_hotline_top_count{strategy,rank}       gauge, its sampled weight
//	spray_hotline_heat{strategy}                 histogram over the output
//	                                             index space: le = element
//	                                             index upper bound, value =
//	                                             cumulative sampled weight
//
// The top-line gauges are capped at promTopRanks ranks per strategy so
// scrape cardinality stays bounded no matter how large the profiler's
// candidate tables are.
const promTopRanks = 8

// writeHotlines renders the spray_hotline_* families for the (already
// strategy-merged) samples.
func writeHotlines(w io.Writer, samples []Sample) {
	fmt.Fprintln(w, "# HELP spray_hotline_events_total Conflict events attributed by the contention profiler, by class.")
	fmt.Fprintln(w, "# TYPE spray_hotline_events_total counter")
	for _, s := range samples {
		if s.Hot == nil {
			continue
		}
		st := promLabel(s.Strategy)
		for c := hotspot.Class(0); c < hotspot.NumClasses; c++ {
			fmt.Fprintf(w, "spray_hotline_events_total{strategy=\"%s\",class=\"%s\"} %d\n",
				st, promName(c.String()), s.Hot.Totals[c.String()])
		}
	}

	fmt.Fprintln(w, "# HELP spray_hotline_sampled_total Decimated conflict weight recorded into the sketches, by class.")
	fmt.Fprintln(w, "# TYPE spray_hotline_sampled_total counter")
	for _, s := range samples {
		if s.Hot == nil {
			continue
		}
		st := promLabel(s.Strategy)
		for c := hotspot.Class(0); c < hotspot.NumClasses; c++ {
			fmt.Fprintf(w, "spray_hotline_sampled_total{strategy=\"%s\",class=\"%s\"} %d\n",
				st, promName(c.String()), s.Hot.Sampled[c.String()])
		}
	}

	fmt.Fprintln(w, "# HELP spray_hotline_top_line Cache-line number of the rank-th hottest conflict line.")
	fmt.Fprintln(w, "# TYPE spray_hotline_top_line gauge")
	for _, s := range samples {
		if s.Hot == nil {
			continue
		}
		st := promLabel(s.Strategy)
		for r, l := range s.Hot.TopLines(promTopRanks) {
			fmt.Fprintf(w, "spray_hotline_top_line{strategy=\"%s\",rank=\"%d\"} %d\n", st, r, l.Line)
		}
	}
	fmt.Fprintln(w, "# HELP spray_hotline_top_count Sampled conflict weight of the rank-th hottest line.")
	fmt.Fprintln(w, "# TYPE spray_hotline_top_count gauge")
	for _, s := range samples {
		if s.Hot == nil {
			continue
		}
		st := promLabel(s.Strategy)
		for r, l := range s.Hot.TopLines(promTopRanks) {
			fmt.Fprintf(w, "spray_hotline_top_count{strategy=\"%s\",rank=\"%d\"} %d\n", st, r, l.Count)
		}
	}

	fmt.Fprintln(w, "# HELP spray_hotline_heat Sampled conflict weight over the output index space (le = element index upper bound).")
	fmt.Fprintln(w, "# TYPE spray_hotline_heat histogram")
	for _, s := range samples {
		p := s.Hot
		if p == nil || p.HeatBuckets == 0 || len(p.Buckets) == 0 {
			continue
		}
		st := promLabel(s.Strategy)
		var cum, count, sum uint64
		for _, b := range p.Buckets {
			count += b
		}
		lastLe := -1
		for b, wgt := range p.Buckets {
			cum += wgt
			// Upper line bound of bucket b, converted to element units.
			// Narrow index spaces make consecutive buckets share an upper
			// bound; merging them keeps the le values strictly increasing
			// (the format forbids duplicate series).
			upLine := ((b + 1) * p.NumLines) / p.HeatBuckets
			le := upLine * p.LineElems
			sum += wgt * uint64(le)
			if le <= lastLe {
				continue
			}
			if b == len(p.Buckets)-1 && cum != count {
				// Defensive: never let the last finite bucket disagree
				// with the +Inf count.
				cum = count
			}
			fmt.Fprintf(w, "spray_hotline_heat_bucket{strategy=\"%s\",le=\"%d\"} %d\n", st, le, cum)
			lastLe = le
		}
		fmt.Fprintf(w, "spray_hotline_heat_bucket{strategy=\"%s\",le=\"+Inf\"} %d\n", st, count)
		fmt.Fprintf(w, "spray_hotline_heat_sum{strategy=\"%s\"} %d\n", st, sum)
		fmt.Fprintf(w, "spray_hotline_heat_count{strategy=\"%s\"} %d\n", st, count)
	}
}

// heatmapDump is the /debug/spray/heatmap JSON shape.
type heatmapDump struct {
	GeneratedAt time.Time          `json:"generated_at"`
	Profiles    []*hotspot.Profile `json:"profiles"`
}

// HeatmapHandler serves the current contention profiles of every
// provider as JSON. Answers 404 while no instrumented reducer has the
// profiler enabled, mirroring the flight/events endpoints' off state.
func HeatmapHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		samples := mergeByStrategy(Samples())
		profs := make([]*hotspot.Profile, 0, len(samples))
		for _, s := range samples {
			if s.Hot != nil {
				profs = append(profs, s.Hot)
			}
		}
		if len(profs) == 0 {
			http.Error(w, "hotspot profiler not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(heatmapDump{GeneratedAt: time.Now(), Profiles: profs})
	})
}

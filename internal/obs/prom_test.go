package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spray/internal/telemetry"
)

// testSample builds a Sample with a plausible counter/histogram shape.
func testSample(strategy string, regions int, retries uint64) Sample {
	var s Sample
	s.Strategy = strategy
	s.Threads = 4
	s.Regions = regions
	s.Wall = time.Duration(regions) * time.Millisecond
	s.BarrierWait = time.Duration(regions) * 100 * time.Microsecond
	s.Busy = []time.Duration{time.Millisecond, 2 * time.Millisecond}
	s.Bytes = 1024
	s.PeakBytes = 4096
	s.Counters[telemetry.Updates] = uint64(regions) * 1000
	s.Counters[telemetry.CASRetries] = retries
	h := &s.Hists[0]
	h.Buckets[3] = 5
	h.Buckets[7] = 2
	h.Count = 7
	h.Sum = 12345
	return s
}

func TestPromExpositionValidates(t *testing.T) {
	samples := []Sample{
		testSample("atomic", 10, 42),
		testSample("block-cas-1024", 3, 0),
	}
	var b strings.Builder
	WritePrometheus(&b, samples, nil)
	scrape, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, b.String())
	}

	if v, ok := scrape.Value("spray_events_total", "strategy=atomic", "kind=cas_retries"); !ok || v != 42 {
		t.Errorf("cas_retries series = %v, %v (want 42)", v, ok)
	}
	if v, ok := scrape.Value("spray_regions_total", "strategy=block-cas-1024"); !ok || v != 3 {
		t.Errorf("regions series = %v, %v (want 3)", v, ok)
	}
	if v, ok := scrape.Value("spray_threads", "strategy=atomic"); !ok || v != 4 {
		t.Errorf("threads gauge = %v, %v", v, ok)
	}
	if v, ok := scrape.Value("spray_providers"); !ok || v != 2 {
		t.Errorf("providers gauge = %v, %v", v, ok)
	}
	// Histogram invariants are checked by ParseProm itself; spot-check the
	// count series and the +Inf bucket.
	kind := promName(telemetry.HKind(0).String())
	if v, ok := scrape.Value("spray_latency_seconds_count", "strategy=atomic", "kind="+kind); !ok || v != 7 {
		t.Errorf("latency count = %v, %v (want 7)", v, ok)
	}
	found := false
	for _, s := range scrape.Series("spray_latency_seconds_bucket") {
		if s.Labels["strategy"] == "atomic" && s.Labels["kind"] == kind && s.Labels["le"] == "+Inf" {
			found = true
			if s.Value != 7 {
				t.Errorf("+Inf bucket = %v, want 7", s.Value)
			}
		}
	}
	if !found {
		t.Error("no +Inf bucket series for atomic")
	}
	if scrape.Types["spray_latency_seconds"] != "histogram" {
		t.Errorf("latency TYPE = %q", scrape.Types["spray_latency_seconds"])
	}
}

func TestPromMergesDuplicateStrategies(t *testing.T) {
	// Two providers with the same strategy name must merge into one label
	// set — the exposition format forbids duplicate series.
	samples := []Sample{
		testSample("atomic", 10, 40),
		testSample("atomic", 5, 2),
	}
	var b strings.Builder
	WritePrometheus(&b, samples, nil)
	scrape, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("merged exposition invalid: %v", err)
	}
	if v, ok := scrape.Value("spray_events_total", "strategy=atomic", "kind=cas_retries"); !ok || v != 42 {
		t.Errorf("merged cas_retries = %v, %v (want 42)", v, ok)
	}
	if v, _ := scrape.Value("spray_regions_total", "strategy=atomic"); v != 15 {
		t.Errorf("merged regions = %v, want 15", v)
	}
	if v, _ := scrape.Value("spray_latency_seconds_count", "strategy=atomic", "kind="+promName(telemetry.HKind(0).String())); v != 14 {
		t.Errorf("merged latency count = %v, want 14", v)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	nasty := "we\"ird\\strat\negy"
	samples := []Sample{testSample(nasty, 1, 0)}
	var b strings.Builder
	WritePrometheus(&b, samples, nil)
	scrape, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("escaped exposition invalid: %v\n%s", err, b.String())
	}
	// The parser unescapes; the strategy value must round-trip exactly.
	if v, ok := scrape.Value("spray_regions_total", "strategy="+nasty); !ok || v != 1 {
		t.Errorf("nasty strategy did not round-trip: %v, %v", v, ok)
	}
}

func TestPrometheusHandlerServesRegistry(t *testing.T) {
	id := RegisterProvider(func() Sample { return testSample("keeper", 7, 0) })
	t.Cleanup(func() { UnregisterProvider(id) })

	srv := httptest.NewServer(Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	scrape, err := ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("live scrape invalid: %v", err)
	}
	if v, ok := scrape.Value("spray_regions_total", "strategy=keeper"); !ok || v != 7 {
		t.Errorf("keeper regions = %v, %v", v, ok)
	}

	// Flight and events endpoints are 404 until Enable.
	for _, path := range []string{"/debug/spray/flight", "/debug/spray/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s before Enable: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"duplicate series": "# TYPE a counter\na 1\na 2\n",
		"no TYPE":          "lonely 3\n",
		"bad name":         "# TYPE 9bad counter\n9bad 1\n",
		"bad escape":       "# TYPE a counter\na{l=\"x\\q\"} 1\n",
		"unquoted label":   "# TYPE a counter\na{l=x} 1\n",
		"bad value":        "# TYPE a counter\na one\n",
		"decreasing buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"inf != count": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 9\n",
	}
	for name, payload := range cases {
		if _, err := ParseProm(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := "# TYPE a counter\na{l=\"x\\\\y\\\"z\\n\"} 1 1700000000\na 2\n"
	scrape, err := ParseProm(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	if v, ok := scrape.Value("a", "l=x\\y\"z\n"); !ok || v != 1 {
		t.Errorf("escaped label lookup = %v, %v", v, ok)
	}
	if math.IsNaN(scrape.Samples[0].Value) {
		t.Error("unexpected NaN")
	}
}

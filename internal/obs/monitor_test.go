package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spray/internal/telemetry"
)

// monitorFixture serves a controllable /metrics + /debug/spray/events
// pair so Monitor frames are deterministic.
type monitorFixture struct {
	mu      sync.Mutex
	samples []Sample
	events  []telemetry.Event
}

func (f *monitorFixture) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, f.samples, nil)
	})
	mux.HandleFunc("/debug/spray/events", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"dropped": 0, "events": f.events})
	})
	return mux
}

func TestMonitorRendersRatesAndEvents(t *testing.T) {
	fix := &monitorFixture{samples: []Sample{testSample("atomic", 10, 100)}}
	srv := httptest.NewServer(fix.handler())
	t.Cleanup(srv.Close)

	clock := time.Unix(1_700_000_000, 0)
	m := &Monitor{BaseURL: srv.URL, Now: func() time.Time { return clock }}

	// Frame 1: totals only (no window yet).
	var f1 strings.Builder
	if err := m.Tick(&f1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1.String(), "[atomic]") || !strings.Contains(f1.String(), "regions=10") {
		t.Errorf("frame 1 missing strategy/regions:\n%s", f1.String())
	}
	if !strings.Contains(f1.String(), "cas_retries") {
		t.Errorf("frame 1 missing counter totals:\n%s", f1.String())
	}

	// Advance: 10 more regions, 900 more retries, one anomaly event, 2 s
	// of wall clock between scrapes.
	s2 := testSample("atomic", 20, 1000)
	s2.Hists[0].Buckets[3] += 8 // new latency mass so the window has samples
	s2.Hists[0].Count += 8
	fix.mu.Lock()
	fix.samples = []Sample{s2}
	fix.events = append(fix.events, telemetry.Event{
		Seq: 1, Source: "anomaly", Strategy: "atomic",
		Message: "cas-retries 14.0σ above baseline on atomic",
	})
	fix.mu.Unlock()
	clock = clock.Add(2 * time.Second)

	var f2 strings.Builder
	if err := m.Tick(&f2); err != nil {
		t.Fatal(err)
	}
	out := f2.String()
	// 900 retries over 2 s = 450/s.
	if !strings.Contains(out, "450.0/s") {
		t.Errorf("frame 2 missing cas-retry rate:\n%s", out)
	}
	if !strings.Contains(out, "! [anomaly] cas-retries 14.0σ") {
		t.Errorf("frame 2 missing event feed line:\n%s", out)
	}
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=") {
		t.Errorf("frame 2 missing percentiles:\n%s", out)
	}

	// Frame 3: the event was already shown — it must not repeat.
	clock = clock.Add(2 * time.Second)
	var f3 strings.Builder
	if err := m.Tick(&f3); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(f3.String(), "! [anomaly]") {
		t.Errorf("frame 3 repeated an already-shown event:\n%s", f3.String())
	}
}

func TestMonitorExpvarFallback(t *testing.T) {
	mux := http.NewServeMux()
	export := map[string]any{
		"recorders": []map[string]any{
			{"name": "keeper", "counters": map[string]uint64{"updates": 5000, "keeper-foreign": 40}},
		},
		"totals": map[string]uint64{"updates": 5000, "keeper-foreign": 40},
	}
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		blob, _ := json.Marshal(export)
		fmt.Fprintf(w, `{"cmdline":["x"],"memstats":{"Alloc":1},"spray":%s}`, blob)
	})
	srv := httptest.NewServer(mux) // no /metrics: 404 forces the fallback
	t.Cleanup(srv.Close)

	m := &Monitor{BaseURL: srv.URL}
	var out strings.Builder
	if err := m.Tick(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "expvar fallback") || !strings.Contains(s, "[keeper]") {
		t.Errorf("fallback frame wrong:\n%s", s)
	}
	if !strings.Contains(s, "keeper-foreign") {
		t.Errorf("fallback frame missing counters:\n%s", s)
	}
}

func TestMonitorQuantileWindow(t *testing.T) {
	// Two scrapes of a cumulative histogram; the window between them has
	// all its new mass in the le=0.004 bucket.
	prev := histCum{les: []float64{0.001, 0.004, inf()}, cum: []float64{10, 10, 10}, count: 10}
	cur := histCum{les: []float64{0.001, 0.004, inf()}, cum: []float64{10, 18, 18}, count: 18}
	q, ok := windowQuantile(&cur, &prev, 0.5)
	if !ok || q != 0.004 {
		t.Errorf("window p50 = %v, %v, want 0.004", q, ok)
	}
	// Empty window.
	if _, ok := windowQuantile(&prev, &prev, 0.5); ok {
		t.Error("empty window produced a quantile")
	}
	// Since-start (nil prev) falls in the first bucket.
	q, ok = windowQuantile(&prev, nil, 0.5)
	if !ok || q != 0.001 {
		t.Errorf("since-start p50 = %v, %v, want 0.001", q, ok)
	}
}

func inf() float64 { return math.Inf(1) }

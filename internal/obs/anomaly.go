package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"spray/internal/telemetry"
)

// Detector defaults. Sigma 6 on Welford baselines over noisy wall-clock
// rates keeps the false-positive rate negligible while a genuine regime
// flip (a CAS storm moving retries-per-element by orders of magnitude)
// scores far beyond it.
const (
	DefaultSigma      = 6.0
	DefaultMinSamples = 8
	DefaultCooldown   = 5 * time.Second
)

// DetectorConfig tunes the online anomaly detector.
type DetectorConfig struct {
	Sigma      float64       // z-score threshold (<= 0: DefaultSigma)
	MinSamples int           // baseline warm-up (<= 0: DefaultMinSamples)
	Cooldown   time.Duration // per-(strategy, metric) emit rate limit (<= 0: DefaultCooldown)
	// Now is the clock, injectable for deterministic tests (nil:
	// time.Now).
	Now func() time.Time
}

// Detector keeps one set of streaming baselines per (strategy,
// region-shape) key and emits structured events when an observation's
// z-score crosses the threshold. It is fed point-in-time Samples —
// successive snapshots of monotonically increasing counters — and works
// on the deltas between them, so one completed batch of regions between
// two polls is one observation.
//
// The derived metrics, per observation:
//
//	wall-per-region        region wall seconds per region
//	barrier-share          barrier wait / (wall × threads)
//	cas-retry-rate         CAS retries per delivered element
//	block-fallback-share   fallback blocks / blocks resolved
//	keeper-foreign-share   foreign enqueues / keeper updates
//	plan-invalidation-rate plan invalidations per region
//
// Anomalous observations are excluded from the baseline update (outlier
// exclusion keeps a storm from dragging the baseline up until the storm
// reads as normal), and emission is rate-limited per (strategy, metric).
type Detector struct {
	mu         sync.Mutex
	sigma      float64
	minSamples int
	cooldown   time.Duration
	now        func() time.Time
	sinks      []telemetry.EventSink
	states     map[stateKey]*stratState
}

type stateKey struct {
	strategy string
	shape    int // log2 bucket of elements per region
}

type stratState struct {
	prev     Sample
	havePrev bool
	base     map[string]*welford
	lastEmit map[string]time.Time
}

// welford is the classic streaming mean/variance accumulator.
type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// NewDetector creates a detector emitting into the given sinks.
func NewDetector(cfg DetectorConfig, sinks ...telemetry.EventSink) *Detector {
	if cfg.Sigma <= 0 {
		cfg.Sigma = DefaultSigma
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = DefaultMinSamples
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Detector{
		sigma:      cfg.Sigma,
		minSamples: cfg.MinSamples,
		cooldown:   cfg.Cooldown,
		now:        cfg.Now,
		sinks:      sinks,
		states:     map[stateKey]*stratState{},
	}
}

// metric is one derived observable plus its attribution: the raw counter
// an anomaly is pinned on and the remediation hint for the operator.
type metric struct {
	name string
	// value derives the observation from the deltas; ok=false skips the
	// metric this round (denominator empty — e.g. no keeper traffic).
	value func(d obsDelta) (v float64, ok bool)
	// floor is the minimum standard deviation (absolute units) used in
	// the z-score, so near-constant baselines don't turn measurement
	// noise into infinite z.
	floor float64
	// counter names the attributed raw telemetry counter.
	counter string
	// suggest renders the remediation hint for the strategy.
	suggest func(strategy string) string
}

// obsDelta is what one Observe derives from two successive samples.
type obsDelta struct {
	regions  float64
	wall     float64 // seconds
	barrier  float64 // seconds
	threads  float64
	elems    float64 // updates + bulk elems
	counters telemetry.Snapshot
}

var metrics = []metric{
	{
		name: "cas-retry-rate",
		value: func(d obsDelta) (float64, bool) {
			if d.elems <= 0 {
				return 0, false
			}
			return float64(d.counters.Get(telemetry.CASRetries)) / d.elems, true
		},
		floor:   0.01,
		counter: "cas-retries",
		suggest: func(st string) string {
			return "advisor suggests block or binned+" + st + " (write-combining coalesces duplicate indices before the CAS loop)"
		},
	},
	{
		name: "keeper-foreign-share",
		value: func(d obsDelta) (float64, bool) {
			own := float64(d.counters.Get(telemetry.KeeperOwned))
			foreign := float64(d.counters.Get(telemetry.KeeperForeign))
			if own+foreign <= 0 {
				return 0, false
			}
			return foreign / (own + foreign), true
		},
		floor:   0.02,
		counter: "keeper-foreign",
		suggest: func(string) string {
			return "foreign-queue pressure: align the schedule with the ownership partition, or switch to block/plan+keeper so exchanges are precomputed"
		},
	},
	{
		name: "block-fallback-share",
		value: func(d obsDelta) (float64, bool) {
			claims := float64(d.counters.Get(telemetry.BlockClaims))
			falls := float64(d.counters.Get(telemetry.BlockFallbacks))
			if claims+falls <= 0 {
				return 0, false
			}
			return falls / (claims + falls), true
		},
		floor:   0.02,
		counter: "block-fallbacks",
		suggest: func(string) string {
			return "blocks are contended: raise the block size or use keeper's static ownership"
		},
	},
	{
		name: "plan-invalidation-rate",
		value: func(d obsDelta) (float64, bool) {
			if d.regions <= 0 {
				return 0, false
			}
			return float64(d.counters.Get(telemetry.PlanInvalidations)) / d.regions, true
		},
		floor:   0.01,
		counter: "plan-invalidations",
		suggest: func(string) string {
			return "index pattern is unstable between regions: drop the plan wrapper or re-record per phase"
		},
	},
	{
		name: "barrier-share",
		value: func(d obsDelta) (float64, bool) {
			if d.wall <= 0 || d.threads <= 0 {
				return 0, false
			}
			return d.barrier / (d.wall * d.threads), true
		},
		floor:   0.02,
		counter: "barrier-wait",
		suggest: func(string) string {
			return "load imbalance at the join: try a dynamic or guided schedule, or smaller chunks"
		},
	},
	{
		name: "wall-per-region",
		value: func(d obsDelta) (float64, bool) {
			if d.regions <= 0 {
				return 0, false
			}
			return d.wall / d.regions, true
		},
		floor:   1e-6, // 1µs: regions below this are all scheduler noise
		counter: "",   // attributed dynamically to the max-z counter metric
		suggest: func(string) string {
			return "region time regressed with no single counter dominating: capture a trace (-trace) and compare timelines"
		},
	},
}

// Observe feeds one sample. The first sample per (strategy, shape) key
// only establishes the delta base; later samples with at least one new
// region become observations.
func (det *Detector) Observe(s Sample) {
	det.mu.Lock()
	defer det.mu.Unlock()

	// Shape: the order of magnitude of elements delivered per region.
	// Baselines are per shape so a service that alternates between small
	// and large regions does not read the alternation as anomalies.
	elems := s.Counters.Get(telemetry.Updates) + s.Counters.Get(telemetry.BulkElems)
	regions := uint64(s.Regions)
	shape := 0
	if regions > 0 {
		shape = bits.Len64(elems / regions)
	}
	key := stateKey{strategy: s.Strategy, shape: shape}
	st, ok := det.states[key]
	if !ok {
		st = &stratState{base: map[string]*welford{}, lastEmit: map[string]time.Time{}}
		det.states[key] = st
	}
	if !st.havePrev {
		st.prev, st.havePrev = s, true
		return
	}
	dRegions := s.Regions - st.prev.Regions
	if dRegions <= 0 {
		// Nothing ran since the last poll (or the instrumentation was
		// reset); re-base and wait for work.
		st.prev = s
		return
	}
	dc := s.Counters.Delta(st.prev.Counters)
	d := obsDelta{
		regions:  float64(dRegions),
		wall:     (s.Wall - st.prev.Wall).Seconds(),
		barrier:  (s.BarrierWait - st.prev.BarrierWait).Seconds(),
		threads:  float64(s.Threads),
		elems:    float64(dc.Get(telemetry.Updates) + dc.Get(telemetry.BulkElems)),
		counters: dc,
	}
	st.prev = s

	// First pass: score every metric so composite anomalies (wall) can
	// be attributed to the dominant deviating counter metric.
	type scored struct {
		m       metric
		v, z    float64
		mean    float64
		sigma   float64
		breach  bool
		observe bool
	}
	results := make([]scored, 0, len(metrics))
	maxCounterZ, maxCounterIdx := 0.0, -1
	for _, m := range metrics {
		v, ok := m.value(d)
		if !ok {
			continue
		}
		w := st.base[m.name]
		if w == nil {
			w = &welford{}
			st.base[m.name] = w
		}
		r := scored{m: m, v: v, observe: true}
		if w.n >= det.minSamples {
			sd := w.std()
			if sd < m.floor {
				sd = m.floor
			}
			r.mean, r.sigma = w.mean, sd
			r.z = (v - w.mean) / sd
			r.breach = r.z >= det.sigma
		}
		if r.breach {
			r.observe = false // outlier exclusion
		}
		if m.counter != "" && r.z > maxCounterZ {
			maxCounterZ, maxCounterIdx = r.z, len(results)
		}
		results = append(results, r)
	}

	now := det.now()
	for _, r := range results {
		if r.observe {
			st.base[r.m.name].add(r.v)
		}
		if !r.breach {
			continue
		}
		if last, ok := st.lastEmit[r.m.name]; ok && now.Sub(last) < det.cooldown {
			continue
		}
		st.lastEmit[r.m.name] = now

		counter, suggestion := r.m.counter, r.m.suggest(s.Strategy)
		if counter == "" {
			// Composite metric: pin the event on the strongest deviating
			// counter-backed metric when one clearly moved too.
			if maxCounterIdx >= 0 && maxCounterZ >= det.sigma/2 {
				culprit := results[maxCounterIdx]
				counter = culprit.m.counter
				suggestion = culprit.m.suggest(s.Strategy)
			} else {
				counter = "wall"
			}
		}
		det.emit(telemetry.Event{
			Time:       now,
			Source:     "anomaly",
			Strategy:   s.Strategy,
			Metric:     r.m.name,
			Counter:    counter,
			Value:      r.v,
			Mean:       r.mean,
			Sigma:      r.sigma,
			Z:          r.z,
			Suggestion: suggestion,
			Message: fmt.Sprintf("%s %.1fσ above baseline on %s (%.4g vs mean %.4g) — %s",
				counter, r.z, s.Strategy, r.v, r.mean, suggestion),
		})
	}
}

// emit fans the event out to every sink. Called with det.mu held; sinks
// must not call back into the detector.
func (det *Detector) emit(ev telemetry.Event) {
	for _, s := range det.sinks {
		s.Emit(ev)
	}
}

// Baseline exposes a metric's current baseline (mean, std, samples) for
// a strategy and shape bucket — diagnostics about the diagnostics,
// surfaced by tests and spraymon's verbose mode.
func (det *Detector) Baseline(strategy string, shape int, metricName string) (mean, std float64, n int) {
	det.mu.Lock()
	defer det.mu.Unlock()
	st := det.states[stateKey{strategy: strategy, shape: shape}]
	if st == nil {
		return 0, 0, 0
	}
	w := st.base[metricName]
	if w == nil {
		return 0, 0, 0
	}
	return w.mean, w.std(), w.n
}

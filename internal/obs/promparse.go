package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-format (0.0.4) parser — the validation half
// of the exposition pillar. It is used three ways: the handler tests
// validate /metrics output against it, `make obs-smoke` validates a
// scrape of a live spraybulk process, and cmd/spraymon consumes scrapes
// through it. It enforces the parts of the format a real Prometheus
// server would reject: metric/label name syntax, quoted and escaped
// label values, parseable sample values, TYPE declarations preceding
// samples, no duplicate series, and histogram invariants (cumulative
// non-decreasing buckets, a +Inf bucket equal to _count, _sum/_count
// present).

// PromSample is one parsed series sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// LabelString renders the labels in sorted key order — the dedup key.
func (s PromSample) LabelString() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	return b.String()
}

// PromScrape is one parsed exposition payload.
type PromScrape struct {
	Samples []PromSample
	// Types maps metric family name to its declared TYPE.
	Types map[string]string
}

// Value returns the sample value for a series, matching on name and the
// given label pairs ("k=v"); ok is false when absent.
func (p *PromScrape) Value(name string, labels ...string) (v float64, ok bool) {
	for _, s := range p.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for _, kv := range labels {
			k, val, _ := strings.Cut(kv, "=")
			if s.Labels[k] != val {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Series returns all samples of one metric name.
func (p *PromScrape) Series(name string) []PromSample {
	var out []PromSample
	for _, s := range p.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// baseFamily strips histogram/summary suffixes to the declared family.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ParseProm parses and validates one exposition payload.
func ParseProm(r io.Reader) (*PromScrape, error) {
	out := &PromScrape{Types: map[string]string{}}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, typ := fields[2], ""
				if len(fields) == 4 {
					typ = strings.TrimSpace(fields[3])
				}
				if !validMetricName(name) {
					return nil, fmt.Errorf("prom: line %d: bad metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: bad TYPE %q for %s", lineNo, typ, name)
				}
				if _, dup := out.Types[name]; dup {
					return nil, fmt.Errorf("prom: line %d: duplicate TYPE for %s", lineNo, name)
				}
				out.Types[name] = typ
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		family := baseFamily(s.Name)
		if _, ok := out.Types[family]; !ok {
			if _, ok := out.Types[s.Name]; !ok {
				return nil, fmt.Errorf("prom: line %d: sample %s before any TYPE declaration", lineNo, s.Name)
			}
		}
		key := s.Name + "{" + s.LabelString() + "}"
		if seen[key] {
			return nil, fmt.Errorf("prom: line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := out.validateHistograms(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSampleLine parses `name{label="value",...} value [timestamp]`.
func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if rest == "" {
				return s, fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("label without '=' near %q", rest)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validLabelName(lname) {
				return s, fmt.Errorf("bad label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return s, fmt.Errorf("label %s value not quoted", lname)
			}
			val, n, err := unquoteLabel(rest)
			if err != nil {
				return s, fmt.Errorf("label %s: %w", lname, err)
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("duplicate label %s", lname)
			}
			s.Labels[lname] = val
			rest = rest[n:]
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want 'value [timestamp]' after series, got %q", rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// unquoteLabel consumes a quoted, escaped label value starting at
// rest[0] == '"'; returns the value and bytes consumed.
func unquoteLabel(rest string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(rest); i++ {
		c := rest[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", 0, fmt.Errorf("trailing backslash")
			}
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", rest[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// validateHistograms checks every TYPE histogram family: buckets
// cumulative and non-decreasing in le order, a +Inf bucket present and
// equal to _count, and _sum/_count series present per label set.
func (p *PromScrape) validateHistograms() error {
	for family, typ := range p.Types {
		if typ != "histogram" {
			continue
		}
		type hist struct {
			byLE  map[float64]float64
			les   []float64
			sum   *float64
			count *float64
		}
		hists := map[string]*hist{}
		get := func(ls string) *hist {
			h, ok := hists[ls]
			if !ok {
				h = &hist{byLE: map[float64]float64{}}
				hists[ls] = h
			}
			return h
		}
		for _, s := range p.Samples {
			labels := make(map[string]string, len(s.Labels))
			for k, v := range s.Labels {
				if k != "le" {
					labels[k] = v
				}
			}
			ls := PromSample{Labels: labels}.LabelString()
			switch s.Name {
			case family + "_bucket":
				leStr, ok := s.Labels["le"]
				if !ok {
					return fmt.Errorf("prom: %s_bucket{%s} without le label", family, ls)
				}
				le, err := parsePromValue(leStr)
				if err != nil {
					return fmt.Errorf("prom: %s_bucket bad le %q", family, leStr)
				}
				h := get(ls)
				h.byLE[le] = s.Value
				h.les = append(h.les, le)
			case family + "_sum":
				v := s.Value
				get(ls).sum = &v
			case family + "_count":
				v := s.Value
				get(ls).count = &v
			}
		}
		for ls, h := range hists {
			if h.sum == nil || h.count == nil {
				return fmt.Errorf("prom: histogram %s{%s} missing _sum or _count", family, ls)
			}
			if len(h.les) == 0 {
				return fmt.Errorf("prom: histogram %s{%s} has no buckets", family, ls)
			}
			sort.Float64s(h.les)
			prev := math.Inf(-1)
			last := 0.0
			for _, le := range h.les {
				v := h.byLE[le]
				if v < last {
					return fmt.Errorf("prom: histogram %s{%s} bucket le=%g decreases (%g < %g)", family, ls, le, v, last)
				}
				last = v
				prev = le
			}
			if !math.IsInf(prev, 1) {
				return fmt.Errorf("prom: histogram %s{%s} missing +Inf bucket", family, ls)
			}
			if inf := h.byLE[math.Inf(1)]; inf != *h.count {
				return fmt.Errorf("prom: histogram %s{%s} +Inf bucket %g != _count %g", family, ls, inf, *h.count)
			}
		}
	}
	return nil
}

package obs

import (
	"encoding/json"
	"net/http"
	"sync"

	"spray/internal/telemetry"
)

// DefaultEventCapacity bounds the structured event ring when Enable is
// not told otherwise.
const DefaultEventCapacity = 128

// EventRing is a bounded drop-oldest ring of structured diagnostic
// events — the live feed spraymon tails and /debug/spray/events serves.
// It implements telemetry.EventSink and assigns the process-wide event
// sequence numbers.
type EventRing struct {
	mu      sync.Mutex
	buf     []telemetry.Event
	start   int // index of the oldest entry
	n       int // live entries
	seq     uint64
	dropped uint64
}

// NewEventRing creates a ring of the given capacity (<= 0 selects
// DefaultEventCapacity).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventRing{buf: make([]telemetry.Event, capacity)}
}

// Emit appends ev, stamping its sequence number (if unset) and evicting
// the oldest entry when full.
func (r *EventRing) Emit(ev telemetry.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ev.Seq == 0 {
		r.seq++
		ev.Seq = r.seq
	}
	i := (r.start + r.n) % len(r.buf)
	if r.n == len(r.buf) {
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	} else {
		r.n++
	}
	r.buf[i] = ev
}

// Events returns the buffered events, oldest first.
func (r *EventRing) Events() []telemetry.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]telemetry.Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Dropped returns how many events were evicted before being read.
func (r *EventRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Seq returns the last assigned sequence number — the total number of
// events emitted so far.
func (r *EventRing) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Handler serves the ring as a JSON document:
//
//	{"dropped": N, "events": [...]}
func (r *EventRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(map[string]any{
			"dropped": r.Dropped(),
			"events":  r.Events(),
		})
	})
}

// Package obs is the production diagnostics layer of the SPRAY
// reproduction, built on top of internal/telemetry's counter shards and
// histograms. Where telemetry *records* what strategies do, obs watches
// a long-running reduction service and answers operator questions:
//
//   - Prometheus text-format exposition (/metrics, prom.go): every
//     counter kind, latency histogram and region gauge of every
//     registered sample provider, with sanitized strategy/kind labels.
//   - An always-on flight recorder (flight.go): a bounded drop-oldest
//     ring of recent telemetry snapshots and structured events, dumped
//     as JSON on demand, on worker panic, and on SIGQUIT.
//   - An online anomaly detector (anomaly.go): per-(strategy, shape)
//     streaming Welford baselines over derived rates, emitting
//     rate-limited events that name the dominant deviating counter and
//     a remediation suggestion.
//   - The scrape/monitor client half (promparse.go, monitor.go) that
//     cmd/spraymon drives against a live process.
//
// Everything here is pull-based over the provider registry: reducers
// instrumented with spray.Instrument publish a Provider that yields a
// point-in-time Sample. Nothing in this package touches a reduction hot
// path — the off state is the absence of providers and a nil global
// Diagnostics, so the telemetry-off overhead budget is untouched.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"spray/internal/hotspot"
	"spray/internal/telemetry"
)

// Sample is one point-in-time view of an instrumented (team, reducer)
// pair — the provider-facing mirror of spray.RegionReport, kept as plain
// data so this package does not import the root package.
type Sample struct {
	Strategy    string             `json:"strategy"`
	Threads     int                `json:"threads"`
	Regions     int                `json:"regions"`
	Wall        time.Duration      `json:"wall"`
	BarrierWait time.Duration      `json:"barrier_wait"`
	Busy        []time.Duration    `json:"busy,omitempty"`
	Bytes       int64              `json:"bytes"`
	PeakBytes   int64              `json:"peak_bytes"`
	Counters    telemetry.Snapshot `json:"-"`
	// CounterMap is the JSON rendering of Counters (filled by dump
	// paths; scrape paths read Counters directly).
	CounterMap map[string]uint64                           `json:"counters,omitempty"`
	Hists      [telemetry.NumHKinds]telemetry.HistSnapshot `json:"-"`
	// Hot is the index-space contention profile when the provider's
	// reducer has the hotspot profiler enabled (nil otherwise). It rides
	// into flight-recorder snapshots and the /debug/spray/heatmap
	// endpoint as-is.
	Hot *hotspot.Profile `json:"hot,omitempty"`
}

// LoadImbalance returns max over mean per-member busy time (0 when no
// busy time was recorded).
func (s Sample) LoadImbalance() float64 {
	if len(s.Busy) == 0 {
		return 0
	}
	var max, sum time.Duration
	for _, b := range s.Busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := sum / time.Duration(len(s.Busy))
	if mean <= 0 {
		return 0
	}
	return float64(max) / float64(mean)
}

// Provider yields a fresh Sample on demand. Providers must be safe to
// call concurrently with running regions (telemetry slots are atomic).
type Provider func() Sample

// The provider registry. spray.Instrument registers one provider per
// instrumentation and removes it on Detach, so scrapes, flight captures
// and detector polls always see exactly the currently-attached reducers.
var (
	provMu    sync.Mutex
	providers = map[uint64]Provider{}
	provSeq   uint64
)

// RegisterProvider adds p to the registry and returns the handle to
// unregister it with.
func RegisterProvider(p Provider) uint64 {
	provMu.Lock()
	defer provMu.Unlock()
	provSeq++
	providers[provSeq] = p
	return provSeq
}

// UnregisterProvider removes the provider registered under id.
func UnregisterProvider(id uint64) {
	provMu.Lock()
	defer provMu.Unlock()
	delete(providers, id)
}

// Samples collects one Sample from every registered provider, sorted by
// strategy name (stable scrape and dump order).
func Samples() []Sample {
	provMu.Lock()
	ps := make([]Provider, 0, len(providers))
	for _, p := range providers {
		ps = append(ps, p)
	}
	provMu.Unlock()
	out := make([]Sample, 0, len(ps))
	for _, p := range ps {
		out = append(out, p())
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Strategy < out[j].Strategy })
	return out
}

// Options configures Enable.
type Options struct {
	// FlightCapacity bounds the flight recorder ring (entries); <= 0
	// selects DefaultFlightCapacity.
	FlightCapacity int
	// EventCapacity bounds the structured event ring; <= 0 selects
	// DefaultEventCapacity.
	EventCapacity int
	// Sigma is the anomaly z-score threshold; <= 0 selects DefaultSigma.
	Sigma float64
	// MinSamples is the baseline warm-up before the detector may fire;
	// <= 0 selects DefaultMinSamples.
	MinSamples int
	// Cooldown rate-limits events per (strategy, metric); <= 0 selects
	// DefaultCooldown.
	Cooldown time.Duration
	// PollInterval starts a background goroutine calling Poll at this
	// period. Zero means no poller: the embedder calls Poll (tests, or
	// processes that tick from their own loop).
	PollInterval time.Duration
}

// Diagnostics bundles the always-on production pillars: the flight
// recorder, the event ring and the anomaly detector, plus the optional
// poll loop that feeds them.
type Diagnostics struct {
	Flight   *Flight
	Events   *EventRing
	Detector *Detector

	stop chan struct{}
	done chan struct{}
}

var (
	diagMu sync.Mutex
	diag   *Diagnostics
)

// Enable constructs the global Diagnostics (idempotent: a second call
// returns the existing instance unchanged). The detector emits into both
// the event ring and the flight recorder.
func Enable(o Options) *Diagnostics {
	diagMu.Lock()
	defer diagMu.Unlock()
	if diag != nil {
		return diag
	}
	d := &Diagnostics{
		Flight: NewFlight(o.FlightCapacity),
		Events: NewEventRing(o.EventCapacity),
	}
	d.Detector = NewDetector(DetectorConfig{
		Sigma:      o.Sigma,
		MinSamples: o.MinSamples,
		Cooldown:   o.Cooldown,
	}, d.Events, d.Flight)
	if o.PollInterval > 0 {
		d.stop = make(chan struct{})
		d.done = make(chan struct{})
		go d.pollLoop(o.PollInterval)
	}
	diag = d
	return d
}

// Enabled returns the global Diagnostics, or nil when Enable was never
// called (the zero-cost off state).
func Enabled() *Diagnostics {
	diagMu.Lock()
	defer diagMu.Unlock()
	return diag
}

// Disable stops the poll loop (if any) and clears the global, returning
// the package to the off state. Tests use it to isolate themselves; a
// production process normally never disables diagnostics.
func Disable() {
	diagMu.Lock()
	d := diag
	diag = nil
	diagMu.Unlock()
	if d != nil && d.stop != nil {
		close(d.stop)
		<-d.done
	}
}

func (d *Diagnostics) pollLoop(interval time.Duration) {
	defer close(d.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.Poll()
		}
	}
}

// Poll takes one diagnostics tick: collect a sample from every provider,
// feed each through the anomaly detector (which may emit events), and
// append a snapshot entry to the flight recorder. Manual Poll and the
// background poller are interchangeable; calls serialize internally.
func (d *Diagnostics) Poll() {
	samples := Samples()
	for _, s := range samples {
		d.Detector.Observe(s)
	}
	d.Flight.RecordSnapshot(samples)
}

// OnPanic is the par.SetPanicHook target: it records a panic event plus
// an immediate snapshot of every provider, so a post-mortem flight dump
// contains the panicking region's last telemetry state.
func (d *Diagnostics) OnPanic(tid int, value string) {
	ev := telemetry.Event{
		Time:    time.Now(),
		Source:  "panic",
		Message: fmt.Sprintf("worker panic in team member %d: %s", tid, value),
	}
	d.Events.Emit(ev)
	d.Flight.Emit(ev)
	d.Flight.RecordSnapshot(Samples())
}

package obs

import (
	"bufio"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"
)

// TestObsSmokeSpraybulkScrape is the end-to-end smoke behind `make
// obs-smoke`: build the spraybulk harness, start it with -metrics-http
// on an ephemeral port and -linger so the server outlives the tiny run,
// scrape /metrics and validate the exposition with ParseProm, check the
// flight endpoint answers, then kill the process.
func TestObsSmokeSpraybulkScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "spraybulk")
	build := exec.Command("go", "build", "-o", bin, "./cmd/spraybulk")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build spraybulk: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-workload", "conv", "-n", "20000", "-max-threads", "2",
		"-repeats", "1", "-min-time", "1ms", "-json", "",
		"-metrics-http", "127.0.0.1:0", "-linger", "2m")
	cmd.Dir = t.TempDir()
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The harness announces the bound address on stderr before running.
	addrRe := regexp.MustCompile(`live metrics on (http://[^/\s]+)/metrics`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		close(addrCh)
	}()
	var base string
	select {
	case base = <-addrCh:
		if base == "" {
			t.Fatal("spraybulk exited without announcing a metrics address")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the metrics address")
	}

	// Scrape until the diagnostics poller (250 ms inside the harness) has
	// recorded at least one flight entry. Providers come and go with each
	// measured point, so flight entries are the deterministic liveness
	// signal; every successful scrape is format-validated along the way.
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			lastErr = err
			time.Sleep(200 * time.Millisecond)
			continue
		}
		scrape, err := ParseProm(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("live /metrics failed validation: %v", err)
		}
		lastErr = nil
		if v, ok := scrape.Value("spray_flight_entries"); ok && v > 0 {
			// The instrumented points export full per-strategy series while
			// attached; whenever one is visible it must carry all kinds.
			if p, _ := scrape.Value("spray_providers"); p > 0 &&
				len(scrape.Series("spray_events_total")) == 0 {
				t.Error("providers registered but no counter series")
			}
			// The diagnostics endpoints must be live too (the harness
			// enables the flight recorder with -metrics-http).
			fr, err := client.Get(base + "/debug/spray/flight")
			if err != nil {
				t.Fatalf("flight endpoint: %v", err)
			}
			fr.Body.Close()
			if fr.StatusCode != http.StatusOK {
				t.Errorf("flight endpoint status %d", fr.StatusCode)
			}
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("never scraped a flight entry; last error: %v", lastErr)
	}
	t.Fatal("never scraped a flight entry (spray_flight_entries stayed 0)")
}

// TestMain keeps the package's global provider/diagnostics state from
// leaking between tests that share the process.
func TestMain(m *testing.M) {
	code := m.Run()
	Disable()
	os.Exit(code)
}

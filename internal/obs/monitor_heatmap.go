package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// The spraymon heatmap panel: one spark-bar line per profiled strategy
// showing where in the output array the conflicts land, plus the
// hottest cache lines by sampled weight.

// heatGlyphs are the eight spark levels; empty buckets render as '·' so
// cold regions stay visually distinct from low-but-nonzero heat.
var heatGlyphs = []rune("▁▂▃▄▅▆▇█")

// sparkline renders buckets as one character each, scaled to the
// hottest bucket.
func sparkline(buckets []uint64) string {
	var max uint64
	for _, b := range buckets {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	for _, b := range buckets {
		switch {
		case b == 0:
			sb.WriteRune('·')
		default:
			lvl := int(b * uint64(len(heatGlyphs)-1) / max)
			sb.WriteRune(heatGlyphs[lvl])
		}
	}
	return sb.String()
}

// renderHeatmap fetches /debug/spray/heatmap and renders the contention
// panel. A 404 (no profiled reducer server-side) is silent, like the
// events tail.
func (m *Monitor) renderHeatmap(w io.Writer) {
	resp, err := m.get("/debug/spray/heatmap")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var dump heatmapDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return
	}
	for _, p := range dump.Profiles {
		if p == nil {
			continue
		}
		total := p.TotalConflicts()
		cls, clsW := p.DominantClass()
		fmt.Fprintf(w, "  heatmap %-18s conflicts=%d", p.Strategy, total)
		if cls != "" && total > 0 {
			fmt.Fprintf(w, "  dominant=%s (%d%%)", cls, 100*clsW/total)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "    [0..%d) %s\n", p.N, sparkline(p.Buckets))
		for i, l := range p.TopLines(4) {
			fmt.Fprintf(w, "    #%d line %d (elems %d..%d) weight %d\n",
				i+1, l.Line, l.Index, l.Index+p.LineElems-1, l.Count)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"spray/internal/telemetry"
)

// Monitor is the client half of the diagnostics layer: it polls a live
// spray process over HTTP and renders per-strategy counter rates,
// latency-percentile movement and the structured event feed as terminal
// frames. cmd/spraymon is a thin flag wrapper around it. The primary
// endpoint is /metrics (Prometheus exposition, parsed with ParseProm);
// when that is absent — a process serving only the legacy expvar page —
// it falls back to /debug/vars and renders counters without histograms.
type Monitor struct {
	// BaseURL is the scrape target root, e.g. "http://localhost:9090".
	BaseURL string
	// Client is the HTTP client (nil: a client with a 5 s timeout).
	Client *http.Client
	// Now is the frame clock, injectable for tests (nil: time.Now).
	Now func() time.Time

	mu      sync.Mutex
	prev    *monState
	lastSeq uint64
}

// monState is the digested form of one scrape, kept so the next frame
// can render rates and percentile movement from the window between them.
type monState struct {
	at       time.Time
	counters map[string]map[string]float64 // strategy -> kind -> total
	regions  map[string]float64
	wall     map[string]float64            // seconds
	hists    map[string]map[string]histCum // strategy -> kind -> buckets
	// window percentiles of the previous frame, for movement arrows
	pcts map[string]map[string][2]float64 // strategy -> kind -> {p50, p99}
}

// histCum is one histogram's cumulative buckets in le order.
type histCum struct {
	les   []float64
	cum   []float64
	count float64
}

func (m *Monitor) client() *http.Client {
	if m.Client != nil {
		return m.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (m *Monitor) now() time.Time {
	if m.Now != nil {
		return m.Now()
	}
	return time.Now()
}

func (m *Monitor) get(path string) (*http.Response, error) {
	return m.client().Get(strings.TrimRight(m.BaseURL, "/") + path)
}

// Tick scrapes once and writes one rendered frame to w. The first tick
// has no window to diff against and renders totals only.
func (m *Monitor) Tick(w io.Writer) error {
	resp, err := m.get("/metrics")
	if err != nil {
		return fmt.Errorf("spraymon: scrape %s: %w", m.BaseURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return m.tickExpvar(w)
	}
	scrape, err := ParseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("spraymon: %w", err)
	}

	cur := digest(scrape, m.now())

	m.mu.Lock()
	prev := m.prev
	m.prev = cur
	m.mu.Unlock()

	m.render(w, scrape, cur, prev)
	m.renderHeatmap(w)
	m.renderEvents(w)
	return nil
}

// digest folds a parsed scrape into the per-strategy maps a frame needs.
func digest(p *PromScrape, at time.Time) *monState {
	st := &monState{
		at:       at,
		counters: map[string]map[string]float64{},
		regions:  map[string]float64{},
		wall:     map[string]float64{},
		hists:    map[string]map[string]histCum{},
		pcts:     map[string]map[string][2]float64{},
	}
	for _, s := range p.Samples {
		strat := s.Labels["strategy"]
		switch s.Name {
		case "spray_events_total":
			c := st.counters[strat]
			if c == nil {
				c = map[string]float64{}
				st.counters[strat] = c
			}
			c[s.Labels["kind"]] = s.Value
		case "spray_regions_total":
			st.regions[strat] = s.Value
		case "spray_region_wall_seconds_total":
			st.wall[strat] = s.Value
		case "spray_latency_seconds_bucket":
			le, err := parsePromValue(s.Labels["le"])
			if err != nil {
				continue
			}
			hk := st.hists[strat]
			if hk == nil {
				hk = map[string]histCum{}
				st.hists[strat] = hk
			}
			h := hk[s.Labels["kind"]]
			h.les = append(h.les, le)
			h.cum = append(h.cum, s.Value)
			if math.IsInf(le, 1) {
				h.count = s.Value
			}
			hk[s.Labels["kind"]] = h
		}
	}
	for _, hk := range st.hists {
		for k, h := range hk {
			sortHist(&h)
			hk[k] = h
		}
	}
	return st
}

func sortHist(h *histCum) {
	idx := make([]int, len(h.les))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.les[idx[a]] < h.les[idx[b]] })
	les := make([]float64, len(idx))
	cum := make([]float64, len(idx))
	for i, j := range idx {
		les[i], cum[i] = h.les[j], h.cum[j]
	}
	h.les, h.cum = les, cum
}

// windowQuantile returns the q-quantile of the window between two scrapes
// of one cumulative histogram (prev nil: since process start). ok=false
// when the window saw no samples.
func windowQuantile(cur, prev *histCum, q float64) (float64, bool) {
	n := len(cur.les)
	delta := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		d := cur.cum[i]
		if prev != nil && i < len(prev.cum) {
			d -= prev.cum[i]
		}
		delta[i] = d
		if i == n-1 {
			total = d
		}
	}
	if total <= 0 {
		return 0, false
	}
	target := q * total
	for i := 0; i < n; i++ {
		if delta[i] >= target {
			if math.IsInf(cur.les[i], 1) && i > 0 {
				return cur.les[i-1], true
			}
			return cur.les[i], true
		}
	}
	return cur.les[n-1], true
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk/s", v/1e3)
	default:
		return fmt.Sprintf("%.1f/s", v)
	}
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Nanosecond).String()
}

// movement renders a percentile with an arrow against the previous
// frame's value: ↑ when it grew by >25%, ↓ when it shrank by >25%.
func movement(cur float64, prev float64, havePrev bool) string {
	s := fmtSeconds(cur)
	if !havePrev || prev <= 0 {
		return s
	}
	switch {
	case cur > prev*1.25:
		return s + "↑"
	case cur < prev*0.75:
		return s + "↓"
	default:
		return s + "·"
	}
}

// render writes one frame: a header, then per strategy the region/element
// rates, the busiest counters of the window, and latency percentiles.
func (m *Monitor) render(w io.Writer, p *PromScrape, cur, prev *monState) {
	providers, _ := p.Value("spray_providers")
	anomalies, _ := p.Value("spray_anomaly_events_total")
	fmt.Fprintf(w, "spraymon %s  %s  providers=%d  anomalies=%d\n",
		m.BaseURL, cur.at.Format("15:04:05"), int(providers), int(anomalies))

	var dt float64
	if prev != nil {
		dt = cur.at.Sub(prev.at).Seconds()
	}

	strategies := make([]string, 0, len(cur.counters))
	for s := range cur.counters {
		strategies = append(strategies, s)
	}
	sort.Strings(strategies)

	for _, strat := range strategies {
		fmt.Fprintf(w, "  [%s] regions=%d", strat, int(cur.regions[strat]))
		if dt > 0 {
			fmt.Fprintf(w, " (%s)", fmtRate((cur.regions[strat]-prev.regions[strat])/dt))
		}
		if wall := cur.wall[strat]; wall > 0 {
			fmt.Fprintf(w, " wall=%s", fmtSeconds(wall))
		}
		fmt.Fprintln(w)

		// Counters: totals on the first frame, window rates after, top 6
		// by rate so a storm floats to the top of the frame.
		type kv struct {
			kind string
			v    float64
		}
		var rows []kv
		for kind, total := range cur.counters[strat] {
			v := total
			if dt > 0 {
				v = (total - prev.counters[strat][kind]) / dt
			}
			if v > 0 {
				rows = append(rows, kv{kind, v})
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].kind < rows[j].kind
		})
		if len(rows) > 6 {
			rows = rows[:6]
		}
		for _, r := range rows {
			if dt > 0 {
				fmt.Fprintf(w, "    %-22s %s\n", r.kind, fmtRate(r.v))
			} else {
				fmt.Fprintf(w, "    %-22s %.0f\n", r.kind, r.v)
			}
		}

		// Latency percentiles of the window, with movement arrows against
		// the previous window.
		kinds := make([]string, 0, len(cur.hists[strat]))
		for k := range cur.hists[strat] {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			h := cur.hists[strat][kind]
			var ph *histCum
			if prev != nil {
				if hh, ok := prev.hists[strat][kind]; ok {
					ph = &hh
				}
			}
			p50, ok50 := windowQuantile(&h, ph, 0.50)
			p99, ok99 := windowQuantile(&h, ph, 0.99)
			if !ok50 && !ok99 {
				continue
			}
			var prevP [2]float64
			havePrev := false
			if prev != nil {
				if pp, ok := prev.pcts[strat][kind]; ok {
					prevP, havePrev = pp, true
				}
			}
			if cur.pcts[strat] == nil {
				cur.pcts[strat] = map[string][2]float64{}
			}
			cur.pcts[strat][kind] = [2]float64{p50, p99}
			fmt.Fprintf(w, "    %-22s p50=%s p99=%s\n", kind+" latency",
				movement(p50, prevP[0], havePrev), movement(p99, prevP[1], havePrev))
		}
	}
}

// renderEvents tails /debug/spray/events, printing entries newer than the
// last frame. A 404 (diagnostics not enabled server-side) is silent.
func (m *Monitor) renderEvents(w io.Writer) {
	resp, err := m.get("/debug/spray/events")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var feed struct {
		Dropped uint64            `json:"dropped"`
		Events  []telemetry.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&feed); err != nil {
		return
	}
	m.mu.Lock()
	last := m.lastSeq
	m.mu.Unlock()
	maxSeq := last
	for _, ev := range feed.Events {
		if ev.Seq <= last {
			continue
		}
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
		fmt.Fprintf(w, "  ! [%s] %s\n", ev.Source, ev.Message)
	}
	m.mu.Lock()
	m.lastSeq = maxSeq
	m.mu.Unlock()
}

// tickExpvar is the fallback frame for processes that serve only the
// legacy expvar endpoint: counters and rates, no histograms or events.
func (m *Monitor) tickExpvar(w io.Writer) error {
	resp, err := m.get("/debug/vars")
	if err != nil {
		return fmt.Errorf("spraymon: no /metrics and no /debug/vars on %s: %w", m.BaseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("spraymon: no /metrics and /debug/vars answered %s", resp.Status)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return fmt.Errorf("spraymon: parse /debug/vars: %w", err)
	}
	// The spray export is whichever var carries a recorders/totals pair;
	// scanning for the shape avoids pinning the published name.
	type export struct {
		Recorders []struct {
			Name     string            `json:"name"`
			Counters map[string]uint64 `json:"counters"`
		} `json:"recorders"`
		Totals map[string]uint64 `json:"totals"`
	}
	var exp *export
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var e export
		if err := json.Unmarshal(vars[name], &e); err == nil && e.Recorders != nil {
			exp = &e
			break
		}
	}
	if exp == nil {
		return fmt.Errorf("spraymon: /debug/vars on %s has no spray telemetry export", m.BaseURL)
	}

	now := m.now()
	cur := &monState{at: now, counters: map[string]map[string]float64{}}
	for _, r := range exp.Recorders {
		c := cur.counters[r.Name]
		if c == nil {
			c = map[string]float64{}
			cur.counters[r.Name] = c
		}
		for k, v := range r.Counters {
			c[k] += float64(v)
		}
	}
	m.mu.Lock()
	prev := m.prev
	m.prev = cur
	m.mu.Unlock()

	var dt float64
	if prev != nil {
		dt = now.Sub(prev.at).Seconds()
	}
	fmt.Fprintf(w, "spraymon %s  %s  (expvar fallback)\n", m.BaseURL, now.Format("15:04:05"))
	strategies := make([]string, 0, len(cur.counters))
	for s := range cur.counters {
		strategies = append(strategies, s)
	}
	sort.Strings(strategies)
	for _, strat := range strategies {
		fmt.Fprintf(w, "  [%s]\n", strat)
		kinds := make([]string, 0, len(cur.counters[strat]))
		for k := range cur.counters[strat] {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			total := cur.counters[strat][kind]
			if dt > 0 {
				rate := (total - prev.counters[strat][kind]) / dt
				if rate <= 0 {
					continue
				}
				fmt.Fprintf(w, "    %-22s %s\n", kind, fmtRate(rate))
			} else if total > 0 {
				fmt.Fprintf(w, "    %-22s %.0f\n", kind, total)
			}
		}
	}
	return nil
}

package obs

import (
	"os"
	"os/signal"
	"syscall"
)

// notify, stopNotify and reraise isolate the signal plumbing of the
// flight recorder's SIGQUIT dump so the ring logic stays testable
// without touching process signal state.

func notify(ch chan os.Signal, sigs ...os.Signal) { signal.Notify(ch, sigs...) }

func stopNotify(ch chan os.Signal) { signal.Stop(ch) }

// reraise restores the default disposition for sig and re-delivers it to
// the process, so the runtime's stock behavior (stack dump + exit for
// SIGQUIT) follows the flight dump. Signals that cannot be re-raised
// portably are simply swallowed after the dump.
func reraise(ch chan os.Signal, sig os.Signal) {
	ssig, ok := sig.(syscall.Signal)
	if !ok {
		return
	}
	signal.Stop(ch)
	signal.Reset(sig)
	_ = syscall.Kill(syscall.Getpid(), ssig)
}

package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spray/internal/hotspot"
)

// hotProfile records a known pattern into an exact-sampling profiler and
// returns its snapshot.
func hotProfile(strategy string, n int) *hotspot.Profile {
	p := hotspot.New(strategy, n, 2, hotspot.Options{SamplePeriod: 1})
	s0, s1 := p.Shard(0), p.Shard(1)
	for i := 0; i < 10; i++ {
		s0.Record(hotspot.KeeperForeign, 40)
	}
	s0.RecordW(hotspot.CASRetry, 47, 3)
	s1.Record(hotspot.CASRetry, n-1)
	prof := p.Snapshot()
	prof.Updates = 10000
	return prof
}

func TestHotlineExpositionValidates(t *testing.T) {
	s := testSample("keeper", 4, 0)
	s.Hot = hotProfile("keeper", 4096)
	plain := testSample("atomic", 2, 7) // no profiler: families must skip it
	var b strings.Builder
	WritePrometheus(&b, []Sample{s, plain}, nil)
	scrape, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("hotline exposition failed validation: %v\n%s", err, b.String())
	}
	for name, typ := range map[string]string{
		"spray_hotline_events_total":  "counter",
		"spray_hotline_sampled_total": "counter",
		"spray_hotline_top_line":      "gauge",
		"spray_hotline_top_count":     "gauge",
		"spray_hotline_heat":          "histogram",
	} {
		if scrape.Types[name] != typ {
			t.Errorf("%s TYPE = %q, want %q", name, scrape.Types[name], typ)
		}
	}
	if v, ok := scrape.Value("spray_hotline_events_total", "strategy=keeper", "class=keeper_foreign"); !ok || v != 10 {
		t.Errorf("keeper_foreign events = %v, %v (want 10)", v, ok)
	}
	if v, ok := scrape.Value("spray_hotline_events_total", "strategy=keeper", "class=cas_retry"); !ok || v != 4 {
		t.Errorf("cas_retry events = %v, %v (want 4)", v, ok)
	}
	if v, ok := scrape.Value("spray_hotline_sampled_total", "strategy=keeper", "class=keeper_foreign"); !ok || v != 10 {
		t.Errorf("keeper_foreign sampled = %v, %v (want 10)", v, ok)
	}
	// Hottest line is 5 (indices 40..47, weight 13).
	if v, ok := scrape.Value("spray_hotline_top_line", "strategy=keeper", "rank=0"); !ok || v != 5 {
		t.Errorf("top line rank 0 = %v, %v (want 5)", v, ok)
	}
	if v, ok := scrape.Value("spray_hotline_top_count", "strategy=keeper", "rank=0"); !ok || v != 13 {
		t.Errorf("top count rank 0 = %v, %v (want 13)", v, ok)
	}
	// The heat histogram's +Inf bucket must equal its count (total
	// sampled weight: 13 at line 5 plus 1 at the last line).
	var inf float64
	for _, series := range scrape.Series("spray_hotline_heat_bucket") {
		if series.Labels["strategy"] == "keeper" && series.Labels["le"] == "+Inf" {
			inf = series.Value
		}
	}
	if inf != 14 {
		t.Errorf("heat +Inf = %v, want 14", inf)
	}
	if v, ok := scrape.Value("spray_hotline_heat_count", "strategy=keeper"); !ok || v != 14 {
		t.Errorf("heat count = %v, %v (want 14)", v, ok)
	}
	// The unprofiled strategy must not appear in the hotline families.
	for _, series := range scrape.Series("spray_hotline_events_total") {
		if series.Labels["strategy"] == "atomic" {
			t.Error("unprofiled strategy leaked into spray_hotline_events_total")
		}
	}
}

func TestHotlineLabelEscaping(t *testing.T) {
	nasty := "hot\"str\\at\negy"
	s := testSample(nasty, 1, 0)
	s.Hot = hotProfile(nasty, 4096)
	var b strings.Builder
	WritePrometheus(&b, []Sample{s}, nil)
	scrape, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("escaped hotline exposition invalid: %v\n%s", err, b.String())
	}
	if v, ok := scrape.Value("spray_hotline_events_total", "strategy="+nasty, "class=keeper_foreign"); !ok || v != 10 {
		t.Errorf("nasty strategy did not round-trip: %v, %v", v, ok)
	}
}

func TestHotlineHeatNarrowIndexSpace(t *testing.T) {
	// 40 elements = 5 lines against 64 heat buckets: most buckets share
	// an upper bound, which must be merged into strictly-increasing le
	// values or ParseProm rejects the exposition.
	p := hotspot.New("tiny", 40, 1, hotspot.Options{SamplePeriod: 1})
	sh := p.Shard(0)
	for i := 0; i < 40; i++ {
		sh.Record(hotspot.CASRetry, i)
	}
	s := testSample("tiny", 1, 0)
	s.Hot = p.Snapshot()
	var b strings.Builder
	WritePrometheus(&b, []Sample{s}, nil)
	scrape, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("narrow heat histogram invalid: %v\n%s", err, b.String())
	}
	if v, ok := scrape.Value("spray_hotline_heat_count", "strategy=tiny"); !ok || v != 40 {
		t.Errorf("heat count = %v, %v (want 40)", v, ok)
	}
	seen := map[string]bool{}
	for _, series := range scrape.Series("spray_hotline_heat_bucket") {
		le := series.Labels["le"]
		if seen[le] {
			t.Errorf("duplicate le %q survived merging", le)
		}
		seen[le] = true
	}
}

func TestHotlineMergesDuplicateStrategies(t *testing.T) {
	a := testSample("keeper", 1, 0)
	a.Hot = hotProfile("keeper", 4096)
	b := testSample("keeper", 1, 0)
	b.Hot = hotProfile("keeper", 4096)
	var sb strings.Builder
	WritePrometheus(&sb, []Sample{a, b}, nil)
	scrape, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("merged hotline exposition invalid: %v\n%s", err, sb.String())
	}
	if v, ok := scrape.Value("spray_hotline_events_total", "strategy=keeper", "class=keeper_foreign"); !ok || v != 20 {
		t.Errorf("merged keeper_foreign events = %v, %v (want 20)", v, ok)
	}
}

func TestHeatmapHandlerRoundTrip(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// No profiled provider: 404, like flight/events before Enable.
	resp, err := http.Get(srv.URL + "/debug/spray/heatmap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty registry status = %d, want 404", resp.StatusCode)
	}

	prof := hotProfile("keeper", 4096)
	id := RegisterProvider(func() Sample {
		s := testSample("keeper", 1, 0)
		s.Hot = prof
		return s
	})
	defer UnregisterProvider(id)

	resp, err = http.Get(srv.URL + "/debug/spray/heatmap")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var dump heatmapDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dump.Profiles) != 1 {
		t.Fatalf("profiles = %d, want 1", len(dump.Profiles))
	}
	got := dump.Profiles[0]
	if got.Strategy != "keeper" || got.TotalConflicts() != prof.TotalConflicts() {
		t.Fatalf("round trip: strategy=%q conflicts=%d, want keeper/%d",
			got.Strategy, got.TotalConflicts(), prof.TotalConflicts())
	}
	if got.Lines[0].Line != prof.Lines[0].Line || got.Lines[0].Count != prof.Lines[0].Count {
		t.Fatalf("top line round trip: %+v vs %+v", got.Lines[0], prof.Lines[0])
	}
	if dump.GeneratedAt.IsZero() {
		t.Fatal("generated_at not stamped")
	}
}

func TestHeatmapSparkline(t *testing.T) {
	if got := sparkline([]uint64{0, 1, 4, 8}); got != "·▁▄█" {
		t.Fatalf("sparkline = %q", got)
	}
	if got := sparkline([]uint64{0, 0}); got != "··" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
}

func TestHeatmapMonitorPanel(t *testing.T) {
	prof := hotProfile("keeper", 4096)
	id := RegisterProvider(func() Sample {
		s := testSample("keeper", 1, 0)
		s.Hot = prof
		return s
	})
	defer UnregisterProvider(id)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	m := &Monitor{BaseURL: srv.URL}
	var out strings.Builder
	if err := m.Tick(&out); err != nil {
		t.Fatalf("tick: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "heatmap keeper") {
		t.Fatalf("monitor output missing heatmap panel:\n%s", text)
	}
	if !strings.Contains(text, "dominant=keeper-foreign") {
		t.Fatalf("monitor output missing dominant class:\n%s", text)
	}
	if !strings.Contains(text, "line 5") {
		t.Fatalf("monitor output missing top line:\n%s", text)
	}
}

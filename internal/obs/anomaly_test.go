package obs

import (
	"math/bits"
	"strings"
	"testing"
	"time"

	"spray/internal/telemetry"
)

// detectorClock is a deterministic, manually advanced time source.
type detectorClock struct{ t time.Time }

func (c *detectorClock) now() time.Time          { return c.t }
func (c *detectorClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// calmSample renders the cumulative state after `rounds` calm regions of
// the atomic strategy: 10k updates and 20 CAS retries (rate 0.002) per
// region, 1 ms wall each.
func calmSample(rounds int) Sample {
	var s Sample
	s.Strategy = "atomic"
	s.Threads = 4
	s.Regions = rounds
	s.Wall = time.Duration(rounds) * time.Millisecond
	s.BarrierWait = time.Duration(rounds) * 50 * time.Microsecond
	s.Counters[telemetry.Updates] = uint64(rounds) * 10_000
	s.Counters[telemetry.CASRetries] = uint64(rounds) * 20
	return s
}

func calmShape() int { return bits.Len64(10_000) }

func newTestDetector(clk *detectorClock, sinks ...telemetry.EventSink) *Detector {
	return NewDetector(DetectorConfig{
		Sigma:      4,
		MinSamples: 4,
		Cooldown:   time.Second,
		Now:        clk.now,
	}, sinks...)
}

func TestAnomalyDetectorFlagsCASStorm(t *testing.T) {
	clk := &detectorClock{t: time.Unix(1_700_000_000, 0)}
	ring := NewEventRing(0)
	det := newTestDetector(clk, ring)

	// Warm-up: 8 calm polls (first establishes the delta base, then 7
	// observations — past MinSamples).
	const calmPolls = 8
	for i := 1; i <= calmPolls; i++ {
		det.Observe(calmSample(i))
		clk.advance(100 * time.Millisecond)
	}
	if got := ring.Events(); len(got) != 0 {
		t.Fatalf("calm phase emitted %d events: %+v", len(got), got)
	}
	if _, _, n := det.Baseline("atomic", calmShape(), "cas-retry-rate"); n != calmPolls-1 {
		t.Fatalf("baseline samples = %d, want %d", n, calmPolls-1)
	}

	// The storm: one more region whose delta carries 5000 retries on 10k
	// updates — a 0.5 retry rate against a ~0.002 baseline.
	storm := calmSample(calmPolls + 1)
	storm.Counters[telemetry.CASRetries] += 5000
	det.Observe(storm)

	evs := ring.Events()
	if len(evs) != 1 {
		t.Fatalf("storm emitted %d events, want 1: %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Source != "anomaly" || ev.Strategy != "atomic" {
		t.Errorf("event identity %q/%q", ev.Source, ev.Strategy)
	}
	if ev.Metric != "cas-retry-rate" || ev.Counter != "cas-retries" {
		t.Errorf("attribution %q/%q, want cas-retry-rate/cas-retries", ev.Metric, ev.Counter)
	}
	if ev.Z < 4 {
		t.Errorf("z = %v, want >= sigma", ev.Z)
	}
	if !strings.Contains(ev.Suggestion, "binned") || !strings.Contains(ev.Message, "cas-retries") {
		t.Errorf("message lacks remediation/counter: %q / %q", ev.Message, ev.Suggestion)
	}

	// Outlier exclusion: the storm must not have entered the baseline.
	mean, _, n := det.Baseline("atomic", calmShape(), "cas-retry-rate")
	if n != calmPolls-1 || mean > 0.01 {
		t.Errorf("storm polluted baseline: mean=%v n=%d", mean, n)
	}
}

func TestAnomalyCooldownRateLimits(t *testing.T) {
	clk := &detectorClock{t: time.Unix(1_700_000_000, 0)}
	ring := NewEventRing(0)
	det := newTestDetector(clk, ring)

	for i := 1; i <= 8; i++ {
		det.Observe(calmSample(i))
		clk.advance(100 * time.Millisecond)
	}
	stormAt := func(round int) Sample {
		s := calmSample(round)
		s.Counters[telemetry.CASRetries] += 5000 * uint64(round-8)
		return s
	}
	det.Observe(stormAt(9))
	clk.advance(100 * time.Millisecond) // inside the 1 s cooldown
	det.Observe(stormAt(10))
	if n := len(ring.Events()); n != 1 {
		t.Fatalf("cooldown let through %d events, want 1", n)
	}
	clk.advance(2 * time.Second) // past the cooldown
	det.Observe(stormAt(11))
	if n := len(ring.Events()); n != 2 {
		t.Errorf("post-cooldown storm suppressed: %d events, want 2", n)
	}
}

func TestAnomalyWallAttributionFallsBackToWall(t *testing.T) {
	clk := &detectorClock{t: time.Unix(1_700_000_000, 0)}
	ring := NewEventRing(0)
	det := newTestDetector(clk, ring)

	for i := 1; i <= 10; i++ {
		det.Observe(calmSample(i))
		clk.advance(100 * time.Millisecond)
	}
	// A pure wall regression: the region took 100× longer with every
	// counter rate unchanged. The composite metric must fire and, with no
	// counter metric deviating, pin on "wall".
	slow := calmSample(11)
	slow.Wall += 100 * time.Millisecond
	det.Observe(slow)

	evs := ring.Events()
	if len(evs) != 1 {
		t.Fatalf("wall regression emitted %d events, want 1: %+v", len(evs), evs)
	}
	if evs[0].Metric != "wall-per-region" || evs[0].Counter != "wall" {
		t.Errorf("attribution %q/%q, want wall-per-region/wall", evs[0].Metric, evs[0].Counter)
	}
}

func TestAnomalyShapeBucketsSeparateBaselines(t *testing.T) {
	clk := &detectorClock{t: time.Unix(1_700_000_000, 0)}
	det := newTestDetector(clk)

	// Alternate tiny and huge regions: each shape keeps its own baseline,
	// so neither reads the alternation as an anomaly.
	small, big := 0, 0
	var sSmall, sBig Sample
	sSmall.Strategy, sBig.Strategy = "atomic", "atomic"
	sSmall.Threads, sBig.Threads = 4, 4
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			small++
			sSmall.Regions = small
			sSmall.Wall = time.Duration(small) * time.Millisecond
			sSmall.Counters[telemetry.Updates] = uint64(small) * 100
			det.Observe(sSmall)
		} else {
			big++
			sBig.Regions = big
			sBig.Wall = time.Duration(big) * 10 * time.Millisecond
			sBig.Counters[telemetry.Updates] = uint64(big) * 1_000_000
			det.Observe(sBig)
		}
		clk.advance(50 * time.Millisecond)
	}
	shapeSmall := bits.Len64(100)
	shapeBig := bits.Len64(1_000_000)
	if shapeSmall == shapeBig {
		t.Fatal("test shapes collide")
	}
	if _, _, n := det.Baseline("atomic", shapeSmall, "wall-per-region"); n == 0 {
		t.Error("small shape has no baseline")
	}
	if _, _, n := det.Baseline("atomic", shapeBig, "wall-per-region"); n == 0 {
		t.Error("big shape has no baseline")
	}
}

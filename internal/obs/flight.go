package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"spray/internal/telemetry"
)

// DefaultFlightCapacity bounds the flight recorder ring when Enable is
// not told otherwise. At the default 1 s poll interval this holds the
// last ~4 minutes of snapshots — enough context around a crash without
// unbounded growth.
const DefaultFlightCapacity = 256

// FlightEntry is one ring slot: either a snapshot of every registered
// provider or a structured event, stamped and sequenced.
type FlightEntry struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind is "snapshot" for provider captures, or the event's source
	// ("anomaly", "panic") for event entries.
	Kind    string           `json:"kind"`
	Samples []Sample         `json:"samples,omitempty"`
	Event   *telemetry.Event `json:"event,omitempty"`
}

// Flight is the always-on flight recorder: a bounded drop-oldest ring of
// recent telemetry snapshots and events. It is cheap enough to leave
// running in production — one ring slot per poll tick plus one per
// event — and is dumped as JSON on demand (/debug/spray/flight), on
// worker panic (via the par panic hook) and on SIGQUIT.
type Flight struct {
	mu      sync.Mutex
	buf     []FlightEntry
	start   int
	n       int
	seq     uint64
	dropped uint64
}

// NewFlight creates a flight recorder ring of the given capacity (<= 0
// selects DefaultFlightCapacity).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Flight{buf: make([]FlightEntry, capacity)}
}

// push appends one entry, evicting the oldest when full.
func (f *Flight) push(e FlightEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	e.Seq = f.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	i := (f.start + f.n) % len(f.buf)
	if f.n == len(f.buf) {
		f.start = (f.start + 1) % len(f.buf)
		f.dropped++
	} else {
		f.n++
	}
	f.buf[i] = e
}

// RecordSnapshot appends a snapshot entry holding the given samples. The
// samples' CounterMap fields are filled so the JSON dump carries the
// counters by name.
func (f *Flight) RecordSnapshot(samples []Sample) {
	for i := range samples {
		samples[i].CounterMap = samples[i].Counters.Map()
	}
	f.push(FlightEntry{Kind: "snapshot", Samples: samples})
}

// Emit appends an event entry; Flight implements telemetry.EventSink so
// the anomaly detector's events land in the crash context automatically.
func (f *Flight) Emit(ev telemetry.Event) {
	f.push(FlightEntry{Kind: ev.Source, Time: ev.Time, Event: &ev})
}

// Len returns the number of live entries.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Dropped returns how many entries were evicted oldest-first.
func (f *Flight) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Entries returns a copy of the ring, oldest first.
func (f *Flight) Entries() []FlightEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, 0, f.n)
	for i := 0; i < f.n; i++ {
		out = append(out, f.buf[(f.start+i)%len(f.buf)])
	}
	return out
}

// flightDump is the JSON envelope WriteJSON emits.
type flightDump struct {
	DumpedAt time.Time     `json:"dumped_at"`
	Dropped  uint64        `json:"dropped"`
	Entries  []FlightEntry `json:"entries"`
}

// WriteJSON dumps the ring as one JSON document, oldest entry first.
func (f *Flight) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(flightDump{
		DumpedAt: time.Now(),
		Dropped:  f.Dropped(),
		Entries:  f.Entries(),
	})
}

// Handler serves the JSON dump (the /debug/spray/flight endpoint).
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = f.WriteJSON(w)
	})
}

// DumpOnSignal installs a handler for the given signals (conventionally
// SIGQUIT) that captures a final snapshot and writes the flight dump to
// stderr, then restores the default disposition and re-raises the signal
// so the runtime's usual behavior (the all-goroutine stack dump and
// exit for SIGQUIT) still happens after the flight data is out. The
// returned stop function uninstalls the handler.
func (f *Flight) DumpOnSignal(sigs ...os.Signal) (stop func()) {
	ch := make(chan os.Signal, 1)
	notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case sig := <-ch:
				f.RecordSnapshot(Samples())
				_ = f.WriteJSON(os.Stderr)
				reraise(ch, sig)
			case <-done:
				return
			}
		}
	}()
	return func() {
		stopNotify(ch)
		close(done)
	}
}

package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"spray/internal/telemetry"
)

// Prometheus text-format exposition (version 0.0.4): /metrics renders
// every registered provider's counters, latency histograms and region
// gauges with sanitized {strategy, kind} labels. Providers with the same
// strategy name (two instrumented reducers of one strategy) merge into
// one label set — the format forbids duplicate series.
//
// Series:
//
//	spray_events_total{strategy,kind}           counter, one per Kind
//	spray_latency_seconds{strategy,kind}        histogram (_bucket/_sum/_count)
//	spray_regions_total{strategy}               counter
//	spray_region_wall_seconds_total{strategy}   counter
//	spray_barrier_wait_seconds_total{strategy}  counter
//	spray_threads{strategy}                     gauge
//	spray_bytes{strategy}                       gauge
//	spray_peak_bytes{strategy}                  gauge
//	spray_load_imbalance{strategy}              gauge
//	spray_providers                             gauge
//	spray_anomaly_events_total                  counter (0 until Enable)
//	spray_flight_entries / spray_flight_dropped_total
//
// PrometheusHandler serves it; WritePrometheus renders to any writer
// (the SIGQUIT dump and tests reuse it).

// promName sanitizes a telemetry kind name into a Prometheus label
// value/metric fragment: dashes become underscores, anything outside
// [a-zA-Z0-9_] is dropped.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '-', r == '.', r == ' ':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format: backslash,
// double quote and newline are escaped, everything else passes through
// (strategy names like `binned+atomic` or `block-cas-1024` are legal
// label values as-is).
func promLabel(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// mergeByStrategy folds samples with equal strategy names into one.
func mergeByStrategy(samples []Sample) []Sample {
	out := make([]Sample, 0, len(samples))
	idx := map[string]int{}
	for _, s := range samples {
		i, ok := idx[s.Strategy]
		if !ok {
			idx[s.Strategy] = len(out)
			out = append(out, s)
			continue
		}
		m := &out[i]
		m.Regions += s.Regions
		m.Wall += s.Wall
		m.BarrierWait += s.BarrierWait
		m.Bytes += s.Bytes
		m.PeakBytes += s.PeakBytes
		m.Counters.Merge(s.Counters)
		for k := range m.Hists {
			m.Hists[k].Merge(s.Hists[k])
		}
		if s.Threads > m.Threads {
			m.Threads = s.Threads
		}
		if s.Hot != nil {
			if m.Hot == nil {
				m.Hot = s.Hot
			} else if err := m.Hot.Merge(s.Hot); err != nil {
				// Same strategy over different arrays: keep the first
				// profile rather than emit a nonsensical blend.
				continue
			}
		}
	}
	return out
}

// fmtFloat renders a float the exposition way (shortest round-trip).
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the current provider samples (plus diagnostics
// gauges when d is non-nil) in the Prometheus text exposition format.
func WritePrometheus(w io.Writer, samples []Sample, d *Diagnostics) {
	samples = mergeByStrategy(samples)
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Strategy < samples[j].Strategy })

	fmt.Fprintln(w, "# HELP spray_events_total Strategy telemetry counter events by kind.")
	fmt.Fprintln(w, "# TYPE spray_events_total counter")
	for _, s := range samples {
		st := promLabel(s.Strategy)
		for k := telemetry.Kind(0); k < telemetry.NumKinds; k++ {
			fmt.Fprintf(w, "spray_events_total{strategy=\"%s\",kind=\"%s\"} %d\n",
				st, promName(k.String()), s.Counters.Get(k))
		}
	}

	fmt.Fprintln(w, "# HELP spray_latency_seconds Sampled strategy event latencies by kind.")
	fmt.Fprintln(w, "# TYPE spray_latency_seconds histogram")
	for _, s := range samples {
		st := promLabel(s.Strategy)
		for k := telemetry.HKind(0); k < telemetry.NumHKinds; k++ {
			h := s.Hists[k]
			kind := promName(k.String())
			var cum uint64
			for b := 0; b < telemetry.HistBuckets; b++ {
				cum += h.Buckets[b]
				le := telemetry.BucketUpper(b).Seconds()
				fmt.Fprintf(w, "spray_latency_seconds_bucket{strategy=\"%s\",kind=\"%s\",le=\"%s\"} %d\n",
					st, kind, fmtFloat(le), cum)
			}
			fmt.Fprintf(w, "spray_latency_seconds_bucket{strategy=\"%s\",kind=\"%s\",le=\"+Inf\"} %d\n", st, kind, h.Count)
			fmt.Fprintf(w, "spray_latency_seconds_sum{strategy=\"%s\",kind=\"%s\"} %s\n",
				st, kind, fmtFloat(float64(h.Sum)/1e9))
			fmt.Fprintf(w, "spray_latency_seconds_count{strategy=\"%s\",kind=\"%s\"} %d\n", st, kind, h.Count)
		}
	}

	writeHotlines(w, samples)

	counterGauge := func(name, help, typ string, get func(Sample) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, s := range samples {
			fmt.Fprintf(w, "%s{strategy=\"%s\"} %s\n", name, promLabel(s.Strategy), get(s))
		}
	}
	counterGauge("spray_regions_total", "Parallel regions executed.", "counter",
		func(s Sample) string { return strconv.Itoa(s.Regions) })
	counterGauge("spray_region_wall_seconds_total", "Summed region wall time.", "counter",
		func(s Sample) string { return fmtFloat(s.Wall.Seconds()) })
	counterGauge("spray_barrier_wait_seconds_total", "Summed barrier wait across members.", "counter",
		func(s Sample) string { return fmtFloat(s.BarrierWait.Seconds()) })
	counterGauge("spray_threads", "Team size of the instrumented reducer.", "gauge",
		func(s Sample) string { return strconv.Itoa(s.Threads) })
	counterGauge("spray_bytes", "Strategy extra memory, current.", "gauge",
		func(s Sample) string { return strconv.FormatInt(s.Bytes, 10) })
	counterGauge("spray_peak_bytes", "Strategy extra memory, high-water mark.", "gauge",
		func(s Sample) string { return strconv.FormatInt(s.PeakBytes, 10) })
	counterGauge("spray_load_imbalance", "Max over mean per-member busy time.", "gauge",
		func(s Sample) string { return fmtFloat(s.LoadImbalance()) })

	fmt.Fprintln(w, "# HELP spray_providers Registered telemetry sample providers.")
	fmt.Fprintln(w, "# TYPE spray_providers gauge")
	fmt.Fprintf(w, "spray_providers %d\n", len(samples))

	var anomalies, flightLen uint64
	var flightDropped uint64
	if d != nil {
		anomalies = d.Events.Seq()
		flightLen = uint64(d.Flight.Len())
		flightDropped = d.Flight.Dropped()
	}
	fmt.Fprintln(w, "# HELP spray_anomaly_events_total Structured diagnostic events emitted.")
	fmt.Fprintln(w, "# TYPE spray_anomaly_events_total counter")
	fmt.Fprintf(w, "spray_anomaly_events_total %d\n", anomalies)
	fmt.Fprintln(w, "# HELP spray_flight_entries Flight recorder entries currently buffered.")
	fmt.Fprintln(w, "# TYPE spray_flight_entries gauge")
	fmt.Fprintf(w, "spray_flight_entries %d\n", flightLen)
	fmt.Fprintln(w, "# HELP spray_flight_dropped_total Flight recorder entries evicted oldest-first.")
	fmt.Fprintln(w, "# TYPE spray_flight_dropped_total counter")
	fmt.Fprintf(w, "spray_flight_dropped_total %d\n", flightDropped)
}

// PrometheusHandler serves the text exposition of the live provider
// registry plus the global diagnostics gauges.
func PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, Samples(), Enabled())
	})
}

// Handler returns the full diagnostics mux:
//
//	/metrics              Prometheus text exposition
//	/debug/vars           expvar JSON (the legacy endpoint)
//	/debug/spray/flight   flight recorder JSON dump
//	/debug/spray/events   structured event feed JSON
//	/debug/spray/heatmap  contention profiles JSON
//
// The flight and events endpoints answer 404 until Enable has run; the
// heatmap endpoint answers 404 until some provider has the hotspot
// profiler enabled.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", PrometheusHandler())
	mux.Handle("/debug/vars", telemetry.Handler())
	mux.HandleFunc("/debug/spray/flight", func(w http.ResponseWriter, r *http.Request) {
		d := Enabled()
		if d == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		d.Flight.Handler().ServeHTTP(w, r)
	})
	mux.Handle("/debug/spray/heatmap", HeatmapHandler())
	mux.HandleFunc("/debug/spray/events", func(w http.ResponseWriter, r *http.Request) {
		d := Enabled()
		if d == nil {
			http.Error(w, "diagnostics not enabled", http.StatusNotFound)
			return
		}
		d.Events.Handler().ServeHTTP(w, r)
	})
	return mux
}

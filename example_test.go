package spray_test

import (
	"fmt"
	"math"

	"spray"
)

// The paper's Figure 6: wrap the reduction target, pick a strategy, and
// the scattered updates become safe under any schedule and thread count.
func ExampleReduceFor() {
	in := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	out := make([]float64, 9)

	team := spray.NewTeam(4)
	defer team.Close()

	spray.ReduceFor(team, spray.BlockCAS(4), out, 1, len(in), spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			for i := from; i < to; i++ {
				acc.Add(i-1, 2*in[i]) // fn0
				acc.Add(i+1, 3*in[i]) // fn1
			}
		})

	fmt.Println(out)
	// Output: [2 4 9 14 19 24 29 18 21]
}

// Strategies are values: parse them from configuration to switch the
// reduction scheme without touching the loop (the paper's performance-
// portability workflow).
func ExampleParseStrategy() {
	st, err := spray.ParseStrategy("block-cas-1024")
	fmt.Println(st, err)

	st, err = spray.ParseStrategy("keeper")
	fmt.Println(st, err)

	_, err = spray.ParseStrategy("magic")
	fmt.Println(err)
	// Output:
	// block-cas-1024 <nil>
	// keeper <nil>
	// spray: unknown strategy "magic"
}

// For repeated regions over the same array (time loops, iterative
// solvers), build the Reducer once and drive it with RunReduction so its
// internal allocations are reused.
func ExampleRunReduction() {
	out := make([]float64, 8)
	team := spray.NewTeam(2)
	defer team.Close()

	r := spray.New(spray.Keeper(), out, team.Size())
	for step := 0; step < 3; step++ {
		spray.RunReduction(team, r, 0, 8, spray.Static(),
			func(acc spray.Accessor[float64], from, to int) {
				for i := from; i < to; i++ {
					acc.Add(i, 1)
				}
			})
	}
	fmt.Println(out)
	// Output: [3 3 3 3 3 3 3 3]
}

// Reducer2D wraps a row-major matrix so stencil adjoints and other 2-D
// scatters keep natural (i, j) indexing.
func ExampleReduceFor2D() {
	const rows, cols = 3, 4
	out := make([]float64, rows*cols)
	team := spray.NewTeam(2)
	defer team.Close()

	spray.ReduceFor2D(team, spray.Atomic(), out, rows, cols, 0, rows, spray.Static(),
		func(acc spray.Accessor2D[float64], fromRow, toRow int) {
			for i := fromRow; i < toRow; i++ {
				for j := 0; j < cols; j++ {
					acc.Add(i, j, float64(i*10+j))
				}
			}
		})

	fmt.Println(out)
	// Output: [0 1 2 3 10 11 12 13 20 21 22 23]
}

// Scalar reductions cover the OpenMP reduction(+|min|max:x) idioms.
func ExampleSum() {
	team := spray.NewTeam(3)
	defer team.Close()

	total := spray.Sum(team, 1, 101, func(i int) float64 { return float64(i) })
	smallest := spray.Min(team, 0, 5, math.Inf(1), func(i int) float64 { return float64(3 - i) })

	fmt.Println(total, smallest)
	// Output: 5050 -1
}

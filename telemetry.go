package spray

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
	"unsafe"

	"spray/internal/core"
	"spray/internal/hotspot"
	"spray/internal/obs"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// WorkerPanic re-exports the panic wrapper raised by Team.Run when a
// region body panics: it carries the member's tid, the original panic
// value, and the goroutine stack captured where the panic happened.
type WorkerPanic = par.WorkerPanic

// Instrument attaches runtime telemetry to a reducer driven by team t and
// returns the handle for reading it back. Telemetry is strictly opt-in:
// an uninstrumented reducer pays one predictable nil-check branch per
// counted event and a team without timing dispatches regions untouched.
//
// Instrumenting does three things:
//
//   - the reducer's accessors start bumping per-thread, cache-line-padded
//     counter shards (updates, bulk runs, CAS retries, block claims and
//     fallbacks, keeper queue traffic, entry counts — whichever events the
//     strategy has);
//   - the team gets a region-lifecycle Timing (reused if one is already
//     attached): wall time per region, per-member busy time, barrier wait;
//   - the recorder is registered for expvar export — call Publish (and
//     ServeMetrics) to expose it live on /debug/vars.
//
// Read the accumulated numbers with Report, zero them with Reset, and call
// Detach when done. Instrument must not be called while a region is
// running. Reducers built by New all support counters; a third-party
// Reducer is still timed, its counters just stay zero.
func Instrument[T Value](t *Team, r Reducer[T]) *Instrumentation {
	var zero T
	in := &Instrumentation{
		rec:       telemetry.NewRecorder(r.Name(), t.Size()),
		team:      t,
		strategy:  r.Name(),
		bytes:     r.Bytes,
		peak:      r.PeakBytes,
		lineElems: 64 / int(unsafe.Sizeof(zero)),
	}
	if ir, ok := r.(core.Instrumentable); ok {
		ir.Instrument(in.rec)
		in.detach = func() { ir.Instrument(nil) }
	}
	if t.Recorder() == nil {
		// The loop runtime shares the reducer's recorder: steal-schedule
		// counters (steals, grain splits, per-member chunks) land in the
		// same shards and the same report as the strategy's own events.
		t.SetRecorder(in.rec)
		in.ownsTeamRec = true
	}
	if tm := t.Timing(); tm != nil {
		in.tm = tm
	} else {
		in.tm = par.NewTiming(t.Size())
		t.SetTiming(in.tm)
		in.ownsTiming = true
	}
	telemetry.Register(in.rec)
	in.provID = obs.RegisterProvider(func() obs.Sample {
		r := in.Report()
		return obs.Sample{
			Strategy:    r.Strategy,
			Threads:     r.Threads,
			Regions:     r.Regions,
			Wall:        r.Wall,
			BarrierWait: r.BarrierWait,
			Busy:        r.Busy,
			Bytes:       r.Bytes,
			PeakBytes:   r.PeakBytes,
			Counters:    r.Counters,
			Hists:       r.Latencies,
			Hot:         in.HotspotProfile(),
		}
	})
	return in
}

// Instrumentation is the handle returned by Instrument: it owns the
// reducer's counter recorder and the team's timing accumulator for the
// duration of the attachment.
type Instrumentation struct {
	rec         *telemetry.Recorder
	tm          *par.Timing
	team        *Team
	strategy    string
	bytes       func() int64
	peak        func() int64
	detach      func()
	provID      uint64
	ownsTiming  bool
	ownsTeamRec bool
	tracer      *telemetry.Tracer
	ownsTracer  bool
	lineElems   int
	hot         *hotspot.Profiler
}

// HotspotOptions re-exports the contention profiler's configuration;
// the zero value selects the defaults (4x1024 count-min sketch, top-32
// candidate table, 64 heat buckets, 1-in-64 sampling).
type HotspotOptions = hotspot.Options

// HotspotProfiler re-exports the profiler handle for embedders that
// drive snapshots themselves.
type HotspotProfiler = hotspot.Profiler

// HotspotProfile re-exports the serializable aggregate the profiler
// produces — what /debug/spray/heatmap serves and sprayadvise -profile
// consumes.
type HotspotProfile = hotspot.Profile

// EnableHotspot attaches the index-space contention profiler to the
// instrumented reducer: conflict events (CAS retries, block claim
// contention, keeper foreign submissions, bin flush collisions, plan
// exchange merges) are attributed to cache-line-granularity regions of
// the n-element output array through per-thread count-min sketches.
// n must be the length of the reduced array. A zero Options.LineElems
// defaults to the instrumented element type's cache-line width
// (64/sizeof(T)). Idempotent: a second call returns the existing
// profiler. Must not be called while a region is running.
func (in *Instrumentation) EnableHotspot(n int, opts HotspotOptions) *HotspotProfiler {
	if in.hot != nil {
		return in.hot
	}
	if opts.LineElems <= 0 {
		opts.LineElems = in.lineElems
	}
	in.hot = hotspot.New(in.strategy, n, in.rec.Threads(), opts)
	in.rec.AttachHotspot(in.hot)
	return in.hot
}

// Hotspot returns the attached contention profiler, or nil if
// EnableHotspot was never called.
func (in *Instrumentation) Hotspot() *HotspotProfiler { return in.hot }

// HotspotProfile snapshots the attached profiler into its serializable
// aggregate, with the telemetry update count — element-wise Adds plus
// elements delivered through AddN/Scatter batches — filled in as the
// conflict rate denominator. Returns nil if EnableHotspot was never
// called.
func (in *Instrumentation) HotspotProfile() *HotspotProfile {
	if in.hot == nil {
		return nil
	}
	p := in.hot.Snapshot()
	snap := in.rec.Snapshot()
	// Tiered hot hits never reach the inner strategy's Updates/BulkElems
	// counters, so they are added back to keep the denominator equal to
	// the number of logical updates the region performed.
	p.Updates = snap.Get(telemetry.Updates) + snap.Get(telemetry.BulkElems) +
		snap.Get(telemetry.TieredHotHits)
	return p
}

// EnableTrace turns on span tracing for the instrumented team: every
// region, chunk, finalize merge and keeper drain executed after the call
// is recorded as a timeline event in a bounded per-member ring buffer
// (eventsPerThread entries each; <= 0 selects the default of
// telemetry.DefaultTraceEvents). When the rings fill, the oldest events
// are dropped and counted — the report surfaces them as trace-dropped.
// Read the timeline back with WriteTrace. If the team already has a
// tracer attached (e.g. by a previous Instrumentation), it is shared.
// Must not be called while a region is running.
func (in *Instrumentation) EnableTrace(eventsPerThread int) {
	if in.tracer != nil {
		return
	}
	if tr := in.team.Tracer(); tr != nil {
		in.tracer = tr
		return
	}
	in.tracer = telemetry.NewTracer(in.team.Size(), eventsPerThread)
	in.team.SetTracer(in.tracer)
	in.ownsTracer = true
}

// WriteTrace writes everything the tracer has recorded as Chrome
// trace-event JSON — load the file at chrome://tracing or ui.perfetto.dev.
// Returns an error if EnableTrace was never called. Call after the regions
// of interest have completed; events recorded afterwards land in the same
// rings until Detach.
func (in *Instrumentation) WriteTrace(w io.Writer) error {
	if in.tracer == nil {
		return errors.New("spray: tracing not enabled; call EnableTrace first")
	}
	return in.tracer.WriteChrome(w)
}

// Tracer returns the attached span tracer, or nil if EnableTrace was
// never called.
func (in *Instrumentation) Tracer() *telemetry.Tracer { return in.tracer }

// Report snapshots everything accumulated since Instrument (or the last
// Reset) into one RegionReport. Safe to call while a region is running —
// counters and timing slots are atomic — though mid-region numbers are
// naturally partial.
func (in *Instrumentation) Report() RegionReport {
	ts := in.tm.Snapshot()
	counters := in.rec.Snapshot()
	if tr := in.tracer; tr != nil {
		counters[telemetry.TraceDropped] += tr.Dropped()
	} else if tr := in.team.Tracer(); tr != nil {
		// A tracer attached outside this Instrumentation (e.g. a trace
		// sink wired by an experiment driver) still reports its drops.
		counters[telemetry.TraceDropped] += tr.Dropped()
	}
	return RegionReport{
		Strategy:    in.strategy,
		Threads:     in.rec.Threads(),
		Regions:     ts.Regions,
		Wall:        ts.Wall,
		Busy:        ts.Busy,
		BarrierWait: ts.BarrierWait,
		Bytes:       in.bytes(),
		PeakBytes:   in.peak(),
		Counters:    counters,
		PerThread:   in.rec.PerThread(),
		Latencies:   in.rec.Hists(),
	}
}

// PerThread returns one counter snapshot per team member, for inspecting
// imbalance at the counter level (e.g. which member ate the CAS retries).
func (in *Instrumentation) PerThread() []telemetry.Snapshot { return in.rec.PerThread() }

// Reset zeroes the counters, the timing accumulator, and the contention
// profiler's sketches when one is attached.
func (in *Instrumentation) Reset() {
	in.rec.Reset()
	in.tm.Reset()
	in.hot.Reset()
}

// Publish exposes the live counters of every instrumented reducer in the
// process as the expvar variable "spray"; pair with ServeMetrics to scrape
// them over HTTP. Publishing is idempotent.
func (in *Instrumentation) Publish() { telemetry.Publish("spray") }

// Detach disconnects the telemetry: the reducer returns to its
// uninstrumented fast path, the recorder is unregistered from the export
// registry, and a timing created by Instrument is removed from the team.
// The Instrumentation remains readable (Report keeps returning the final
// numbers).
func (in *Instrumentation) Detach() {
	if in.detach != nil {
		in.detach()
		in.detach = nil
	}
	telemetry.Unregister(in.rec)
	obs.UnregisterProvider(in.provID)
	if in.ownsTiming && in.team.Timing() == in.tm {
		in.team.SetTiming(nil)
	}
	if in.ownsTeamRec && in.team.Recorder() == in.rec {
		in.team.SetRecorder(nil)
	}
	if in.ownsTracer && in.team.Tracer() == in.tracer {
		in.team.SetTracer(nil)
	}
}

// MetricsServer is a running metrics listener: Addr() is the bound
// address to scrape, Close() shuts it down. ServeMetrics returns one so
// embedders and tests stop the listener instead of leaking the port.
type MetricsServer = telemetry.Server

// ServeMetrics starts an HTTP server on addr (e.g. "localhost:6060", or
// ":0" for an ephemeral port) serving the diagnostics mux:
//
//	/metrics             Prometheus text exposition of every
//	                     instrumented reducer (counters, latency
//	                     histograms, region gauges)
//	/debug/vars          expvar JSON (the published recorders)
//	/debug/spray/flight  flight recorder dump (404 until
//	                     EnableFlightRecorder)
//	/debug/spray/events  structured event feed (404 likewise)
//	/debug/spray/heatmap contention profiles of reducers with the
//	                     hotspot profiler enabled (404 until
//	                     EnableHotspot)
//
// The server carries read and idle timeouts so a stuck client cannot pin
// the metrics port, and the returned handle exposes the bound address
// and a Close method.
func ServeMetrics(addr string) (*MetricsServer, error) {
	return telemetry.Serve(addr, obs.Handler())
}

// RegionReport is one telemetry snapshot for a (team, reducer) pair:
// region lifecycle timing from the team, memory and strategy counters from
// the reducer.
type RegionReport struct {
	Strategy    string          // reducer name, e.g. "block-cas-1024"
	Threads     int             // team size
	Regions     int             // parallel regions executed
	Wall        time.Duration   // summed Team.Run wall time
	Busy        []time.Duration // per-member time inside region bodies
	BarrierWait time.Duration   // summed time waiting at team barriers
	Bytes       int64           // reducer's current extra memory
	PeakBytes   int64           // reducer's peak extra memory
	Counters    telemetry.Snapshot
	// PerThread holds one counter snapshot per team member (nil when the
	// report was built by hand); the work-stealing imbalance rows derive
	// from its per-member chunks-executed and steal counts.
	PerThread []telemetry.Snapshot
	// Latencies holds one merged log-bucketed histogram per latency kind
	// (cas-latency, claim-latency, keeper-dwell); kinds the strategy never
	// fed have Count == 0.
	Latencies [telemetry.NumHKinds]telemetry.HistSnapshot
}

// LoadImbalance returns max over mean per-member busy time — 1.0 is a
// perfectly balanced team; 0 when no busy time was recorded.
func (r RegionReport) LoadImbalance() float64 {
	return par.RegionStats{Busy: r.Busy}.LoadImbalance()
}

// ChunkImbalance returns max over mean per-member executed chunks under
// the steal schedule — 1.0 means every member ran the same number of
// chunks; 0 when no steal-schedule chunks were recorded (other
// schedules, or no per-thread data).
func (r RegionReport) ChunkImbalance() float64 {
	var total, max uint64
	for _, s := range r.PerThread {
		c := s.Get(telemetry.ChunksExecuted)
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.PerThread))
	return float64(max) / mean
}

// CounterMap returns the non-zero strategy counters keyed by name.
func (r RegionReport) CounterMap() map[string]uint64 { return r.Counters.Map() }

// WriteTable renders the report as an aligned human-readable table.
func (r RegionReport) WriteTable(w io.Writer) {
	row := func(k string, v any) { fmt.Fprintf(w, "  %-16s %v\n", k, v) }
	fmt.Fprintf(w, "spray region report: %s (%d threads)\n", r.Strategy, r.Threads)
	row("regions", r.Regions)
	row("wall", r.Wall)
	row("barrier-wait", r.BarrierWait)
	stats := par.RegionStats{Busy: r.Busy}
	row("busy max/mean", fmt.Sprintf("%v / %v", stats.MaxBusy(), stats.MeanBusy()))
	if li := r.LoadImbalance(); li > 0 {
		row("load-imbalance", fmt.Sprintf("%.2f", li))
	}
	row("bytes", r.Bytes)
	row("peak-bytes", r.PeakBytes)
	if ci := r.ChunkImbalance(); ci > 0 {
		var b strings.Builder
		for i, s := range r.PerThread {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", s.Get(telemetry.ChunksExecuted))
		}
		row("chunks/member", b.String())
		row("chunk-imbalance", fmt.Sprintf("%.2f", ci))
	}
	for k := telemetry.Kind(0); k < telemetry.NumKinds; k++ {
		if v := r.Counters.Get(k); v != 0 {
			row(k.String(), v)
		}
	}
	for k := telemetry.HKind(0); k < telemetry.NumHKinds; k++ {
		if h := r.Latencies[k]; h.Count != 0 {
			row(k.String(), fmt.Sprintf("p50=%v p90=%v p99=%v max=%v (n=%d)",
				h.P50(), h.P90(), h.P99(), h.MaxLatency(), h.Count))
		}
	}
}

// String renders the report as the WriteTable text.
func (r RegionReport) String() string {
	var b strings.Builder
	r.WriteTable(&b)
	return b.String()
}

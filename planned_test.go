package spray

import (
	"math"
	"math/rand"
	"testing"

	"spray/internal/num"
	"spray/internal/telemetry"
)

// plannedWorkload is one iterative scatter workload: each region replays
// the same batches through RunReduction, the shape the plan wrapper is
// built for.
type plannedWorkload struct {
	n       int
	batches [][]int32
	vals    [][]float64
	want    []float64 // per-region reference delta
}

func genPlannedWorkload(seed int64, n, batches, m int) plannedWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := plannedWorkload{n: n, want: make([]float64, n)}
	for b := 0; b < batches; b++ {
		idx := make([]int32, m)
		vals := make([]float64, m)
		for j := range idx {
			idx[j] = int32(rng.Intn(n))
			vals[j] = float64(rng.Intn(9) - 4)
			w.want[idx[j]] += vals[j]
		}
		w.batches = append(w.batches, idx)
		w.vals = append(w.vals, vals)
	}
	return w
}

// runPlannedRegion drives one region of the workload through RunReduction
// (so the chunker, mid-drain wiring, and team finalize are all the real
// thing).
func (w plannedWorkload) run(team *Team, r Reducer[float64]) {
	RunReduction(team, r, 0, len(w.batches), Static(),
		func(acc Accessor[float64], from, to int) {
			bacc := Bulk(acc)
			for b := from; b < to; b++ {
				bacc.Scatter(w.batches[b], w.vals[b])
			}
		})
}

// TestPlannedStrategyEndToEnd is the public-API acceptance check: for
// every inner strategy named by the issue (plus the stacked binned
// combination), plan+inner through RunReduction matches the bare inner
// strategy exactly over repeated regions — the executor regions bypass
// the inner strategy but may not change a single bit on exact data.
func TestPlannedStrategyEndToEnd(t *testing.T) {
	const n, regions, threads = 6000, 5, 4
	w := genPlannedWorkload(21, n, 32, 400)
	for _, inner := range []Strategy{
		Atomic(), BlockCAS(256), Keeper(), Compensated(), Dense(), Binned(Atomic()),
	} {
		st := Planned(inner)
		outBare := make([]float64, n)
		outPlan := make([]float64, n)
		want := make([]float64, n)
		teamA := NewTeam(threads)
		teamB := NewTeam(threads)
		bare := New(inner, outBare, threads)
		planned := New(st, outPlan, threads)
		if planned.Name() != st.String() {
			t.Errorf("Name = %q, strategy prints %q", planned.Name(), st.String())
		}
		for reg := 0; reg < regions; reg++ {
			w.run(teamA, bare)
			w.run(teamB, planned)
			for i := range want {
				want[i] += w.want[i]
			}
			if d := num.MaxAbsDiff(outPlan, want); d != 0 {
				t.Fatalf("%s region %d: diff vs reference %v", st, reg, d)
			}
			for i := range outBare {
				if math.Float64bits(outBare[i]) != math.Float64bits(outPlan[i]) {
					t.Fatalf("%s region %d: out[%d] bare=%x plan=%x", st, reg, i,
						math.Float64bits(outBare[i]), math.Float64bits(outPlan[i]))
				}
			}
		}
		teamA.Close()
		teamB.Close()
	}
}

// TestPlannedStrategyParsePrint pins the "plan+" naming contract.
func TestPlannedStrategyParsePrint(t *testing.T) {
	for _, name := range []string{"plan+atomic", "plan+keeper", "plan+binned+atomic", "plan+block-cas-512", "plan+compensated"} {
		st, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", name, err)
		}
		if st.String() != name {
			t.Errorf("ParseStrategy(%q).String() = %q", name, st.String())
		}
	}
	if st := Planned(Binned(Keeper())); st.String() != "plan+binned+keeper" {
		t.Errorf("Planned(Binned(Keeper())) prints %q", st)
	}
	if _, err := ParseStrategy("plan+plan+atomic"); err == nil {
		t.Error("double plan+ wrapper parsed")
	}
	if _, err := ParseStrategy("plan+nonsense"); err == nil {
		t.Error("plan+nonsense parsed")
	}
}

// TestPlannedRunReductionTelemetry checks the full public path: counters
// arrive through Instrument, and the amortization story is visible —
// one miss with a compile sample, then hits.
func TestPlannedRunReductionTelemetry(t *testing.T) {
	const n, regions, threads = 4096, 6, 3
	w := genPlannedWorkload(33, n, 24, 256)
	out := make([]float64, n)
	team := NewTeam(threads)
	defer team.Close()
	r := New(Planned(Keeper()), out, threads)
	in := Instrument(team, r)
	defer in.Detach()
	for reg := 0; reg < regions; reg++ {
		w.run(team, r)
	}
	rep := in.Report()
	if got := rep.Counters.Get(telemetry.PlanMisses); got != 1 {
		t.Errorf("plan-misses = %d, want 1", got)
	}
	if got := rep.Counters.Get(telemetry.PlanHits); got != regions-1 {
		t.Errorf("plan-hits = %d, want %d", got, regions-1)
	}
	if h := rep.Latencies[telemetry.PlanCompile]; h.Count != 1 {
		t.Errorf("plan-compile-latency samples = %d, want 1", h.Count)
	}
	if rep.Bytes == 0 {
		t.Error("report bytes = 0 with a live plan")
	}
}

// TestPlannedChangingBoundsInvalidates runs the same body over changing
// loop bounds: the pattern changes every region, so the wrapper must
// keep producing exact results while degrading to passthrough.
func TestPlannedChangingBoundsInvalidates(t *testing.T) {
	const n, threads = 2048, 3
	out := make([]float64, n)
	want := make([]float64, n)
	team := NewTeam(threads)
	defer team.Close()
	r := New(Planned(Atomic()), out, threads)
	for reg := 0; reg < 8; reg++ {
		hi := n - reg*100
		RunReduction(team, r, 0, hi, Static(),
			func(acc Accessor[float64], from, to int) {
				for i := from; i < to; i++ {
					acc.Add(i, 1)
					acc.Add((i*31)%hi, 2)
				}
			})
		for i := 0; i < hi; i++ {
			want[i]++
			want[(i*31)%hi] += 2
		}
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("region %d: diff %v", reg, d)
		}
	}
}

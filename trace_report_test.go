package spray_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spray"
	"spray/internal/telemetry"
)

// crossOwnerRun drives one region where every member writes the whole
// array — the workload shape that exercises atomic CAS traffic, block
// claims and fallbacks, and keeper foreign queues alike.
func crossOwnerRun(team *spray.Team, r spray.Reducer[float64], n int) {
	spray.RunReduction(team, r, 0, n, spray.Static(),
		func(acc spray.Accessor[float64], from, to int) {
			for i := 0; i < n; i++ {
				acc.Add(i, 1)
			}
		})
}

// TestRegionReportLatencyPercentiles is the tentpole acceptance check:
// for each sampling strategy the report must carry a populated latency
// histogram and render its percentiles.
func TestRegionReportLatencyPercentiles(t *testing.T) {
	const n, threads = 1 << 10, 4
	cases := []struct {
		strategy spray.Strategy
		kind     telemetry.HKind
	}{
		{spray.Atomic(), telemetry.CASLatency},
		{spray.BlockCAS(64), telemetry.ClaimLatency},
		{spray.Keeper(), telemetry.KeeperDwell},
	}
	for _, c := range cases {
		t.Run(c.kind.String(), func(t *testing.T) {
			team := spray.NewTeam(threads)
			defer team.Close()
			r := spray.New(c.strategy, make([]float64, n), threads)
			in := spray.Instrument(team, r)
			defer in.Detach()
			crossOwnerRun(team, r, n)

			rep := in.Report()
			h := rep.Latencies[c.kind]
			if h.Count == 0 {
				t.Fatalf("%s histogram empty after a cross-owner region", c.kind)
			}
			if h.P50() <= 0 || h.P99() < h.P50() || h.MaxLatency() < h.P99() {
				t.Errorf("implausible percentiles p50=%v p99=%v max=%v", h.P50(), h.P99(), h.MaxLatency())
			}
			table := rep.String()
			if !strings.Contains(table, c.kind.String()) || !strings.Contains(table, "p50=") {
				t.Errorf("report table missing %s percentiles:\n%s", c.kind, table)
			}

			in.Reset()
			if in.Report().Latencies[c.kind].Count != 0 {
				t.Error("reset left latency samples")
			}
		})
	}
}

// TestInstrumentationTraceEndToEnd drives the full trace lifecycle:
// enable, run, export, validate the Chrome JSON, detach.
func TestInstrumentationTraceEndToEnd(t *testing.T) {
	const n, threads = 1 << 10, 2
	team := spray.NewTeam(threads)
	defer team.Close()
	r := spray.New(spray.Keeper(), make([]float64, n), threads)
	in := spray.Instrument(team, r)
	defer in.Detach()

	var buf bytes.Buffer
	if err := in.WriteTrace(&buf); err == nil {
		t.Fatal("WriteTrace before EnableTrace did not error")
	}
	in.EnableTrace(0)
	if in.Tracer() == nil || team.Tracer() != in.Tracer() {
		t.Fatal("EnableTrace did not attach a tracer to the team")
	}
	in.EnableTrace(0) // idempotent

	const regions = 3
	for i := 0; i < regions; i++ {
		crossOwnerRun(team, r, n)
	}
	if err := in.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}

	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	begins, ends := map[string]int{}, map[string]int{}
	tids := map[int]bool{}
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "B":
			begins[e.Name]++
		case "E":
			ends[e.Name]++
		}
		if e.Ph != "M" {
			tids[e.Tid] = true
		}
	}
	for _, span := range []string{"region", "chunk", "drain"} {
		if begins[span] == 0 {
			t.Errorf("no %s spans in trace (begins: %v)", span, begins)
		}
		if begins[span] != ends[span] {
			t.Errorf("%s spans unbalanced: %d begins, %d ends", span, begins[span], ends[span])
		}
	}
	// Each RunReduction runs the update region plus the keeper drain
	// region, on every member.
	if want := 2 * regions * threads; begins["region"] != want {
		t.Errorf("region spans = %d, want %d", begins["region"], want)
	}
	if len(tids) != threads {
		t.Errorf("trace covers %d member timelines, want %d", len(tids), threads)
	}

	rep := in.Report()
	if rep.Counters.Get(telemetry.TraceDropped) != in.Tracer().Dropped() {
		t.Errorf("trace-dropped counter %d != tracer drops %d",
			rep.Counters.Get(telemetry.TraceDropped), in.Tracer().Dropped())
	}

	in.Detach()
	if team.Tracer() != nil {
		t.Error("Detach left the tracer attached to the team")
	}
	if err := in.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Errorf("WriteTrace after Detach should keep working: %v", err)
	}
}

// TestInstrumentDetachCyclesDoNotGrowRegistry is the leak regression:
// per-benchmark-point Instrument/Detach churn must leave the expvar
// export registry exactly as it found it.
func TestInstrumentDetachCyclesDoNotGrowRegistry(t *testing.T) {
	const n, threads = 256, 2
	team := spray.NewTeam(threads)
	defer team.Close()
	before := len(telemetry.Registered())
	for i := 0; i < 100; i++ {
		r := spray.New(spray.Atomic(), make([]float64, n), threads)
		in := spray.Instrument(team, r)
		crossOwnerRun(team, r, n)
		in.Detach()
	}
	if after := len(telemetry.Registered()); after != before {
		t.Fatalf("registry grew from %d to %d recorders over 100 cycles", before, after)
	}
	if team.Timing() != nil || team.Tracer() != nil {
		t.Error("detach cycles left team attachments")
	}
}

package spray

import (
	"math/rand"
	"testing"

	"spray/internal/num"
)

func TestReduceFor2DAllStrategies(t *testing.T) {
	const rows, cols = 60, 45
	rng := rand.New(rand.NewSource(17))
	in := make([]float64, rows*cols)
	for i := range in {
		in[i] = float64(rng.Intn(7) - 3)
	}
	// Reference: 4-neighbor scatter over the interior.
	want := make([]float64, rows*cols)
	for i := 1; i < rows-1; i++ {
		for j := 1; j < cols-1; j++ {
			v := in[i*cols+j]
			want[(i-1)*cols+j] += v
			want[(i+1)*cols+j] += v
			want[i*cols+j-1] += 2 * v
			want[i*cols+j+1] += 3 * v
		}
	}
	for _, st := range AllStrategies() {
		for _, threads := range []int{1, 4} {
			team := NewTeam(threads)
			out := make([]float64, rows*cols)
			r := ReduceFor2D(team, st, out, rows, cols, 1, rows-1, Static(),
				func(acc Accessor2D[float64], fromRow, toRow int) {
					for i := fromRow; i < toRow; i++ {
						for j := 1; j < cols-1; j++ {
							v := in[i*cols+j]
							acc.Add(i-1, j, v)
							acc.Add(i+1, j, v)
							acc.Add(i, j-1, 2*v)
							acc.Add(i, j+1, 3*v)
						}
					}
				})
			team.Close()
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Errorf("%s threads=%d: diff %v", st, threads, d)
			}
			if r.Rows() != rows || r.Cols() != cols {
				t.Errorf("%s: shape %dx%d", st, r.Rows(), r.Cols())
			}
		}
	}
}

func TestNew2DValidatesShape(t *testing.T) {
	for name, fn := range map[string]func(){
		"short buffer":  func() { New2D(Atomic(), make([]float64, 11), 3, 4, 1) },
		"negative rows": func() { New2D[float64](Atomic(), nil, -1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRunReduction2DReuse(t *testing.T) {
	const rows, cols, regions = 20, 30, 4
	team := NewTeam(3)
	defer team.Close()
	out := make([]float64, rows*cols)
	r := New2D(BlockCAS(64), out, rows, cols, team.Size())
	for reg := 0; reg < regions; reg++ {
		RunReduction2D(team, r, 0, rows, Static(),
			func(acc Accessor2D[float64], fromRow, toRow int) {
				for i := fromRow; i < toRow; i++ {
					for j := 0; j < cols; j++ {
						acc.Add(i, j, 1)
					}
				}
			})
	}
	for i, v := range out {
		if v != regions {
			t.Fatalf("out[%d]=%v, want %d", i, v, regions)
		}
	}
}

func TestRunReduction2DTeamMismatchPanics(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	r := New2D(Atomic(), make([]float64, 12), 3, 4, 3)
	defer func() {
		if recover() == nil {
			t.Error("mismatch did not panic")
		}
	}()
	RunReduction2D(team, r, 0, 3, Static(), func(acc Accessor2D[float64], a, b int) {})
}

func TestOrderedStrategyBitwiseReproducibleThroughPublicAPI(t *testing.T) {
	const n, threads, runs = 3000, 5, 4
	in := make([]float64, n)
	rng := rand.New(rand.NewSource(8))
	for i := range in {
		in[i] = rng.Float64()
	}
	run := func() []float64 {
		team := NewTeam(threads)
		defer team.Close()
		out := make([]float64, n+1)
		ReduceFor(team, Ordered(), out, 1, n, Static(),
			func(acc Accessor[float64], from, to int) {
				for i := from; i < to; i++ {
					acc.Add(i-1, 0.3*in[i])
					acc.Add(i+1, 0.7*in[i])
				}
			})
		return out
	}
	first := run()
	for r := 1; r < runs; r++ {
		got := run()
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("run %d: out[%d]=%x differs from %x", r, i, got[i], first[i])
			}
		}
	}
}

func TestAutoStrategyThroughPublicAPI(t *testing.T) {
	const n = 10000
	team := NewTeam(4)
	defer team.Close()
	out := make([]float64, n)
	r := ReduceFor(team, Auto(256), out, 0, n, Static(),
		func(acc Accessor[float64], from, to int) {
			for rep := 0; rep < 3; rep++ { // enough reuse to escalate
				for i := from; i < to; i++ {
					acc.Add(i, 1)
				}
			}
		})
	if r.Name() != "auto-256" {
		t.Errorf("name %q", r.Name())
	}
	for i, v := range out {
		if v != 3 {
			t.Fatalf("out[%d]=%v", i, v)
		}
	}
}

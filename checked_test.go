package spray

import (
	"strings"
	"testing"
)

func TestCheckedPassesThroughCorrectUsage(t *testing.T) {
	const n = 500
	team := NewTeam(3)
	defer team.Close()
	out := make([]float64, n)
	r := Checked(New(BlockCAS(64), out, team.Size()), n)
	for region := 0; region < 2; region++ { // reset must allow reuse
		RunReduction(team, r, 0, n, Static(),
			func(acc Accessor[float64], from, to int) {
				for i := from; i < to; i++ {
					acc.Add(i, 1)
				}
			})
	}
	for i, v := range out {
		if v != 2 {
			t.Fatalf("out[%d]=%v", i, v)
		}
	}
	if !strings.HasPrefix(r.Name(), "checked(") {
		t.Errorf("name %q", r.Name())
	}
	if r.Threads() != 3 {
		t.Errorf("threads %d", r.Threads())
	}
}

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestCheckedCatchesMisuse(t *testing.T) {
	const n = 100
	out := make([]float64, n)

	expectPanic(t, "out-of-range Add", func() {
		r := Checked(New(Atomic(), out, 1), n)
		r.Private(0).Add(n, 1)
	})
	expectPanic(t, "negative Add", func() {
		r := Checked(New(Atomic(), out, 1), n)
		r.Private(0).Add(-1, 1)
	})
	expectPanic(t, "double Private", func() {
		r := Checked(New(Atomic(), out, 2), n)
		r.Private(1)
		r.Private(1)
	})
	expectPanic(t, "bad tid", func() {
		r := Checked(New(Atomic(), out, 2), n)
		r.Private(2)
	})
	expectPanic(t, "Add after Done", func() {
		r := Checked(New(Atomic(), out, 1), n)
		acc := r.Private(0)
		acc.Done()
		acc.Add(0, 1)
	})
	expectPanic(t, "double Done", func() {
		r := Checked(New(Atomic(), out, 1), n)
		acc := r.Private(0)
		acc.Done()
		acc.Done()
	})
	expectPanic(t, "negative length", func() {
		Checked(New(Atomic(), out, 1), -1)
	})
}

func TestCheckedMemoryPassThrough(t *testing.T) {
	const n = 1 << 12
	out := make([]float64, n)
	inner := New(Dense(), out, 2)
	r := Checked(inner, n)
	acc := r.Private(0)
	acc.Add(1, 1)
	acc.Done()
	r.Finalize()
	if r.PeakBytes() != inner.PeakBytes() || r.PeakBytes() == 0 {
		t.Errorf("peak %d vs inner %d", r.PeakBytes(), inner.PeakBytes())
	}
}

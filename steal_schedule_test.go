package spray

// Strategy-hook audit for the steal schedule: every reducer hook that
// fires at chunk boundaries — the keeper's mid-region mailbox drain, the
// tiered wrapper's rebalance, the binned wrapper's flushes, the plan
// wrapper's tape verification — was designed against the monotone
// per-member chunk order of the static/dynamic/guided schedules. The
// steal schedule delivers chunks out of order and moves them between
// members mid-region, so these tests force heavy stealing (a stalled
// member) and pin exact results plus the hook counters.

import (
	"sync/atomic"
	"testing"
	"time"

	"spray/internal/num"
	"spray/internal/telemetry"
)

// stealBody returns a scatter body over [0, n) with guaranteed foreign
// traffic (every iteration also writes a stride-scrambled index) whose
// first executed chunk stalls, forcing the rest of the team to steal the
// straggler's slice. The returned want function applies the same updates
// sequentially. Inputs are integer-valued so any execution order sums
// exactly.
func stealBody(in []float64, n int, stall time.Duration) (func(acc Accessor[float64], from, to int), func(want []float64)) {
	var stalled atomic.Bool
	body := func(acc Accessor[float64], from, to int) {
		if stall > 0 && !stalled.Swap(true) {
			time.Sleep(stall)
		}
		for i := from; i < to; i++ {
			acc.Add(i, in[i])
			acc.Add((i*31+7)%n, 2*in[i])
		}
	}
	ref := func(want []float64) {
		for i := 0; i < n; i++ {
			want[i] += in[i]
			want[(i*31+7)%n] += 2 * in[i]
		}
	}
	return body, ref
}

// TestStealScheduleAllStrategies pins exactness of every strategy —
// bases and wrapper stacks — under forced stealing.
func TestStealScheduleAllStrategies(t *testing.T) {
	const n = 30_000
	in := testInput(n)
	all := append(AllStrategies(),
		Binned(Atomic()), Binned(Keeper()),
		Tiered(Atomic()), Tiered(Keeper()),
		Planned(Atomic()), Planned(Keeper()))
	for _, st := range all {
		for _, threads := range []int{1, 4} {
			team := NewTeam(threads)
			out := make([]float64, n)
			want := make([]float64, n)
			body, ref := stealBody(in, n, 2*time.Millisecond)
			r := New(st, out, threads)
			RunReduction(team, r, 0, n, Steal(64), body)
			ref(want)
			team.Close()
			if d := num.MaxAbsDiff(out, want); d != 0 {
				t.Errorf("%s threads=%d under steal: diff %v", st, threads, d)
			}
		}
	}
}

// TestStealKeeperMidDrain pins the keeper's chunk-boundary mailbox drain
// under out-of-order chunk delivery: stolen chunks generate foreign
// parcels addressed to the victim, and the victim must keep applying
// them at its own chunk boundaries regardless of which chunks it still
// owns. The counters must show actual steals, foreign traffic and
// mid-region drains in one region set.
func TestStealKeeperMidDrain(t *testing.T) {
	const n, threads, regions = 120_000, 4, 3
	in := testInput(n)
	team := NewTeam(threads)
	defer team.Close()
	out := make([]float64, n)
	want := make([]float64, n)
	r := New(Keeper(), out, threads)
	ins := Instrument(team, r)
	defer ins.Detach()
	for reg := 0; reg < regions; reg++ {
		body, ref := stealBody(in, n, 5*time.Millisecond)
		RunReduction(team, r, 0, n, Steal(128), body)
		ref(want)
	}
	if d := num.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("keeper under steal: diff %v", d)
	}
	rep := ins.Report()
	if got := rep.Counters.Get(telemetry.Steals); got == 0 {
		t.Error("no steals recorded with a stalled member")
	}
	if got := rep.Counters.Get(telemetry.KeeperForeign); got == 0 {
		t.Error("no foreign keeper traffic under stolen chunks")
	}
	if got := rep.Counters.Get(telemetry.KeeperMidDrains); got == 0 {
		t.Error("keeper never drained mid-region at a steal-schedule chunk boundary")
	}
	if ci := rep.ChunkImbalance(); ci < 1 {
		t.Errorf("chunk imbalance %.2f, want >= 1 with per-thread chunk counts", ci)
	}
}

// TestStealTieredRebalance drives the tiered hot/cold wrapper under
// forced stealing across several regions with a heavily skewed stream,
// so online promotion and rebalance run at out-of-order chunk
// boundaries. Results stay exact and the replica cache still absorbs
// traffic.
func TestStealTieredRebalance(t *testing.T) {
	const n, threads, regions = 60_000, 4, 4
	in := testInput(n)
	team := NewTeam(threads)
	defer team.Close()
	out := make([]float64, n)
	want := make([]float64, n)
	r := New(Tiered(Atomic()), out, threads)
	ins := Instrument(team, r)
	defer ins.Detach()
	var stalled atomic.Bool
	for reg := 0; reg < regions; reg++ {
		stalled.Store(false)
		RunReduction(team, r, 0, n, Steal(64),
			func(acc Accessor[float64], from, to int) {
				if !stalled.Swap(true) {
					time.Sleep(2 * time.Millisecond)
				}
				for i := from; i < to; i++ {
					acc.Add(i%64, in[i]) // hot set: the first cache line or two
					acc.Add(i, in[i])
				}
			})
		for i := 0; i < n; i++ {
			want[i%64] += in[i]
			want[i] += in[i]
		}
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("region %d: tiered under steal diff %v", reg, d)
		}
	}
	rep := ins.Report()
	if rep.Counters.Get(telemetry.Steals) == 0 {
		t.Error("no steals recorded")
	}
	if rep.Counters.Get(telemetry.TieredHotHits) == 0 {
		t.Error("tiered replica cache absorbed nothing under steal")
	}
}

// TestStealPlanTapeInvalidation pins the plan wrapper's behavior when
// the executor's recorded partition cannot hold: the steal schedule
// repartitions every region (different members stall), so tape
// verification must catch the deviation and the wrapper must degrade —
// re-record, then permanent passthrough — while every region's values
// stay exact.
func TestStealPlanTapeInvalidation(t *testing.T) {
	const n, threads, regions = 40_000, 4, 8
	in := testInput(n)
	team := NewTeam(threads)
	defer team.Close()
	out := make([]float64, n)
	want := make([]float64, n)
	r := New(Planned(Keeper()), out, threads)
	ins := Instrument(team, r)
	defer ins.Detach()
	for reg := 0; reg < regions; reg++ {
		body, ref := stealBody(in, n, time.Duration(1+reg%3)*time.Millisecond)
		RunReduction(team, r, 0, n, Steal(64), body)
		ref(want)
		if d := num.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("region %d: planned under steal diff %v", reg, d)
		}
	}
	rep := ins.Report()
	hits := rep.Counters.Get(telemetry.PlanHits)
	misses := rep.Counters.Get(telemetry.PlanMisses)
	invals := rep.Counters.Get(telemetry.PlanInvalidations)
	if misses == 0 {
		t.Error("plan wrapper recorded no regions")
	}
	// Every region is accounted for: executed through a verified plan,
	// recorded, or caught deviating by tape verification (an invalidated
	// region executes through the fallback and counts as neither hit nor
	// miss).
	if hits+misses+invals < regions {
		t.Errorf("plan hits %d + misses %d + invalidations %d < %d regions", hits, misses, invals, regions)
	}
	t.Logf("plan under steal: hits=%d misses=%d invalidations=%d", hits, misses, invals)
}

package spray

import (
	"fmt"
	"net/http"
	"sync"
	"syscall"
	"time"

	"spray/internal/obs"
	"spray/internal/par"
	"spray/internal/telemetry"
)

// DiagEvent is one structured diagnostic event: an anomaly detection (a
// derived metric crossing its streaming baseline, attributed to the
// dominant deviating counter with a remediation suggestion) or a worker
// panic notice. Events carry JSON tags and are what /debug/spray/events
// serves and Events returns.
type DiagEvent = telemetry.Event

// Diagnostics is the handle returned by EnableFlightRecorder, bundling
// the flight recorder ring, the event ring and the anomaly detector.
type Diagnostics = obs.Diagnostics

// DiagnosticsOptions configures EnableFlightRecorder. The zero value
// selects production defaults everywhere and a 1 s poll interval.
type DiagnosticsOptions struct {
	// FlightCapacity bounds the flight recorder ring (snapshot + event
	// entries, drop-oldest); <= 0 selects obs.DefaultFlightCapacity.
	FlightCapacity int
	// EventCapacity bounds the structured event ring; <= 0 selects
	// obs.DefaultEventCapacity.
	EventCapacity int
	// AnomalySigma is the detector's z-score threshold; <= 0 selects the
	// default (6σ).
	AnomalySigma float64
	// AnomalyMinSamples is the baseline warm-up observation count before
	// the detector may fire; <= 0 selects the default (8).
	AnomalyMinSamples int
	// AnomalyCooldown rate-limits events per (strategy, metric); <= 0
	// selects the default (5 s).
	AnomalyCooldown time.Duration
	// PollInterval is the background diagnostics tick. Zero selects 1 s;
	// negative disables the poller entirely (the embedder drives Poll).
	PollInterval time.Duration
	// DumpOnSIGQUIT additionally dumps the flight recorder to stderr when
	// the process receives SIGQUIT, before the runtime's usual
	// stack-dump-and-exit behavior.
	DumpOnSIGQUIT bool
}

var (
	diagWireMu sync.Mutex
	diagSig    func() // uninstalls the SIGQUIT handler
)

// EnableFlightRecorder turns on the always-on production diagnostics:
//
//   - a bounded drop-oldest flight recorder of telemetry snapshots and
//     events, dumped on demand (/debug/spray/flight via ServeMetrics),
//     on worker panic, and optionally on SIGQUIT;
//   - an online anomaly detector holding per-(strategy, region-shape)
//     streaming baselines over derived contention rates, emitting
//     rate-limited DiagEvents naming the dominant deviating counter;
//   - a worker-panic hook so a crash's flight dump contains the
//     panicking region's last telemetry snapshot.
//
// It polls every reducer attached with Instrument; enabling before any
// Instrument call is fine (the provider registry is consulted per tick).
// Enabling twice returns the existing instance. Nothing here touches a
// reduction hot path: the poller reads atomic counter slots from outside.
func EnableFlightRecorder(o DiagnosticsOptions) *Diagnostics {
	interval := o.PollInterval
	if interval == 0 {
		interval = time.Second
	}
	if interval < 0 {
		interval = 0
	}
	d := obs.Enable(obs.Options{
		FlightCapacity: o.FlightCapacity,
		EventCapacity:  o.EventCapacity,
		Sigma:          o.AnomalySigma,
		MinSamples:     o.AnomalyMinSamples,
		Cooldown:       o.AnomalyCooldown,
		PollInterval:   interval,
	})
	par.SetPanicHook(func(wp *par.WorkerPanic) {
		d.OnPanic(wp.Tid, fmt.Sprint(wp.Value))
	})
	if o.DumpOnSIGQUIT {
		diagWireMu.Lock()
		if diagSig == nil {
			diagSig = d.Flight.DumpOnSignal(syscall.SIGQUIT)
		}
		diagWireMu.Unlock()
	}
	return d
}

// DisableFlightRecorder stops the poller, uninstalls the panic and
// signal hooks, and returns diagnostics to the zero-cost off state.
// Mainly for tests; a production process normally never disables it.
func DisableFlightRecorder() {
	par.SetPanicHook(nil)
	diagWireMu.Lock()
	if diagSig != nil {
		diagSig()
		diagSig = nil
	}
	diagWireMu.Unlock()
	obs.Disable()
}

// Events returns the buffered diagnostic events, oldest first — nil when
// EnableFlightRecorder has not run.
func Events() []DiagEvent {
	if d := obs.Enabled(); d != nil {
		return d.Events.Events()
	}
	return nil
}

// PrometheusHandler returns the /metrics handler: the Prometheus text
// exposition (format 0.0.4) of every instrumented reducer's counters,
// latency histograms and region gauges, for mounting on an existing mux.
// ServeMetrics already serves it.
func PrometheusHandler() http.Handler { return obs.PrometheusHandler() }

// DiagnosticsHandler returns the full diagnostics mux that ServeMetrics
// serves: /metrics, /debug/vars, /debug/spray/flight and
// /debug/spray/events.
func DiagnosticsHandler() http.Handler { return obs.Handler() }

GO ?= go

.PHONY: ci build vet lint test race race-telemetry bce-audit bench-smoke overhead-smoke hotspot-accuracy obs-smoke bench-bulk bench-observability bench-gate bench-scatter bench-imbalance clean

# ci is the tier-1 gate plus cheap benchmark compile-and-run checks,
# including the telemetry-off overhead guard, the contention-profiler
# accuracy check, the live-metrics smoke and the benchmark regression
# gate.
ci: vet lint build test race race-telemetry bce-audit bench-smoke overhead-smoke hotspot-accuracy obs-smoke bench-gate bench-scatter bench-imbalance

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint holds the write-combining engine and the reducer core to a
# staticcheck-clean bar when the tool is available (it is not vendored;
# the target degrades to a notice rather than installing anything).
lint:
	$(GO) vet ./internal/scatter ./internal/core
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./internal/scatter ./internal/core; \
	else \
		echo "lint: staticcheck not installed; skipped (go vet still ran)"; \
	fi

# -shuffle=on randomizes test execution order within each package, so
# hidden inter-test state dependencies fail in CI instead of lurking.
test:
	$(GO) test -shuffle=on ./...

# bce-audit enforces the bounds-check-elimination contract of the hot
# accumulate kernels. Building through cmd/spraybulk instantiates the
# generic strategies so -d=ssa/check_bce reports real codegen, then:
#   - internal/core/kernels.go (shared contiguous/masked accumulate
#     kernels used by dense, block, keeper and the bin flush paths)
#     must contain NO bounds checks at all;
#   - internal/plan/exec.go (plan executor loops) must contain no
#     slice-prologue checks — only the documented irreducible
#     data-dependent gathers (IsInBounds) may remain.
bce-audit:
	@out=$$($(GO) build -gcflags='spray/...=-d=ssa/check_bce' -o /dev/null ./cmd/spraybulk 2>&1); \
	bad=$$(printf '%s\n' "$$out" | grep -E 'internal/core/kernels\.go.*Found Is' || true); \
	if [ -n "$$bad" ]; then \
		echo "bce-audit: bounds checks crept into the audited kernels:"; \
		printf '%s\n' "$$bad"; exit 1; \
	fi; \
	bad=$$(printf '%s\n' "$$out" | grep -E 'internal/plan/exec\.go.*Found IsSliceInBounds' || true); \
	if [ -n "$$bad" ]; then \
		echo "bce-audit: slice-prologue checks crept into the plan executor:"; \
		printf '%s\n' "$$bad"; exit 1; \
	fi; \
	echo "bce-audit: hot accumulate kernels are bounds-check-free"

race:
	$(GO) test -race ./...

# race-telemetry focuses the race detector on the observability layer
# and the concurrent scatter machinery: counter shards, region timing,
# latency histograms, trace rings, panic wrapping, the export registry,
# the keeper mailbox publish/drain protocol, the binned wrapper, the
# index-space contention profiler (sketches, top-K tables, heatmap
# exposition), the diagnostics subsystem (Prometheus rendering,
# flight recorder, anomaly detector, event rings, spraymon digestion),
# the tiered hot/cold wrapper (replica caches, online promotion,
# eviction flushes), and the work-stealing loop runtime (chunk deques,
# the stealer protocol, the adaptive grain controller).
race-telemetry:
	$(GO) test -race -short -run 'Telemetry|Instrument|Timing|WorkerPanic|Concurrent|Trace|Hist|Sample|Latency|Mailbox|Drain|Binned|Prom|Flight|Anomal|Event|Monitor|Diagnostics|ServeMetrics|CASStorm|ObsOff|Hotspot|Hotline|Heatmap|Tiered|HotSet|Promot|Steal|Deque|Grain' ./internal/telemetry ./internal/par ./internal/core ./internal/memtrack ./internal/scatter ./internal/experiments ./internal/obs ./internal/hotspot .

# bench-smoke proves the bulk and tiered benchmarks run end to end
# without timing anything meaningful (100 iterations per case).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkBulk|BenchmarkTieredZipf' -benchtime 100x .

# overhead-smoke asserts the telemetry-off budget (the gated accessor must
# stay within 2% of an ungated replica — including the tiered hot path
# and the binned staging loop), the contention-profiler budget
# (the profiler-enabled keeper accessor must stay within 2% of the
# detached one, and the disabled paths must not allocate), the
# zero-steady-state-alloc contract of the off paths (tiered hot/cold
# routing included, plus the steal-schedule counters: a steal loop with
# telemetry off must not allocate in steady state), and exercises the
# off/on conv benchmarks once — the telemetry layer, the profiler and
# the diagnostics layer (flight recorder + anomaly poller) on top.
overhead-smoke:
	$(GO) test -run TestTelemetryOffOverhead -count 1 ./internal/core
	$(GO) test -run 'TestHotspotOffOverhead|TestHotspotOffPathNoAlloc|TestHotspotOnPathNoAllocSteadyState|TestOffPathSamplingGateNoAlloc' -count 1 ./internal/core
	$(GO) test -run TestStealOffPathNoAlloc -count 1 ./internal/par
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverheadConv|BenchmarkObsOffOverheadConv|BenchmarkHotspotOverheadConv' -benchtime 20x .

# hotspot-accuracy proves the sampled count-min/top-K profiler agrees
# with the advisor's exact conflict ranking: the sampled top-16 hot
# lines must recover >= 80% of the exactly-computed conflicted lines on
# the conv back-propagation and banded transpose-matrix-vector
# workloads.
hotspot-accuracy:
	$(GO) test -run TestHotspotAccuracy -count 1 ./internal/advisor

# obs-smoke is the end-to-end live-metrics check: build spraybulk, start
# it with -metrics-http on an ephemeral port, scrape /metrics until the
# diagnostics poller has recorded flight entries, validate the exposition
# with the in-tree Prometheus parser, check the flight-dump endpoint, and
# kill the process. Runs as a Go test so it needs no shell plumbing.
obs-smoke:
	$(GO) test -run TestObsSmokeSpraybulkScrape -count 1 -v ./internal/obs

# bench-bulk produces the each-vs-bulk comparison tables and
# results/BENCH_bulk.json at a size that finishes in a few minutes.
# results/ is the canonical home of every benchmark JSON artifact.
bench-bulk:
	$(GO) run ./cmd/spraybulk -json results/BENCH_bulk.json

# bench-observability runs the bulk comparison instrumented: every
# measured point carries its strategy counters in the JSON, and a region
# report per point goes to stdout.
bench-observability:
	$(GO) run ./cmd/spraybulk -n 200000 -max-threads 4 -repeats 1 -min-time 20ms -metrics -json results/BENCH_observability.json

# bench-gate is the benchmark regression gate. It first self-tests the
# detector on the checked-in fixture pair (a synthetic 50% regression
# must be caught), then records a quick sweep and compares it against
# results/bench_baseline.json. A missing or incomparable baseline is
# bootstrapped from the fresh run; a same-host regression beyond the
# (deliberately wide, smoke-scale) noise band fails the target. The
# plan amortization sweep gates with the scatter-class band: its points
# are whole cold solves (record+compile inside the measurement) run few
# times per sample, so run-to-run swing is far above the conv points'.
# The tiered leg records the hot/cold replication comparison (Zipfian
# skewed conv scatter + banded transpose product, hot+atomic vs its
# inner strategies) as results/BENCH_tiered.json — a tracked artifact,
# like BENCH_scatter.json — and gates it with the scatter-class band:
# its points are short Scatter-heavy regions on an oversubscribed
# container, so run-to-run swing matches the scatter points', not the
# conv points'.
bench-gate:
	$(GO) run ./cmd/benchdiff -expect-regression -q cmd/benchdiff/testdata/base.json cmd/benchdiff/testdata/regressed.json
	@mkdir -p results
	$(GO) run ./cmd/spraybulk -n 100000 -max-threads 2 -repeats 2 -min-time 10ms -workload conv -json results/BENCH_gate.json
	$(GO) run ./cmd/benchdiff -gate -sigma 4 -min-rel 0.25 results/bench_baseline.json results/BENCH_gate.json
	$(GO) run ./cmd/spraybulk -n 60000 -max-threads 2 -repeats 2 -min-time 10ms -workload plan -plan-iters 1,4,16 -json results/BENCH_plan.json
	$(GO) run ./cmd/benchdiff -gate -sigma 4 -min-rel 0.75 results/bench_baseline.json results/BENCH_plan.json
	$(GO) run ./cmd/spraybulk -n 100000 -max-threads 2 -repeats 3 -min-time 20ms -workload tiered -json results/BENCH_tiered.json
	$(GO) run ./cmd/benchdiff -gate -sigma 4 -min-rel 0.75 results/bench_baseline.json results/BENCH_tiered.json

# bench-scatter records the binned-vs-unbinned write-combining
# comparison (duplicate-heavy conv adjoint stream + banded transpose
# product) and gates it against the same baseline as bench-gate; scatter
# points absent from an older baseline are reported, not failed. The
# scatter points run few iterations per sample and the oversubscribed
# 2-thread points swing ±60% run-to-run on a 1-core container, so the
# band is much wider than bench-gate's — this is a step-change detector
# (the fixture self-test's 50%-on-stable-points class), not a profiler.
bench-scatter:
	@mkdir -p results
	$(GO) run ./cmd/spraybulk -n 100000 -max-threads 2 -repeats 3 -min-time 20ms -workload scatter -json results/BENCH_scatter.json
	$(GO) run ./cmd/benchdiff -gate -sigma 4 -min-rel 0.75 results/bench_baseline.json results/BENCH_scatter.json

# bench-imbalance records the loop-schedule comparison on the
# imbalanced workloads (front-loaded skew, skewed banded transpose
# product, mini-LULESH) plus the uniform conv control, gates it for
# regressions against the shared baseline, then asserts the ranking
# claims with cmd/schedcheck: steal beats dynamic everywhere, beats
# guided in geomean across the imbalanced legs, and stays within
# tolerance of static on the uniform control. results/BENCH_sched.json
# is a tracked artifact like BENCH_scatter.json. The legs are short
# regions on an oversubscribed 1-core container, so the regression band
# is the scatter-class step-change band, and schedcheck's uniform
# tolerance is wide (see that command's comment for the keeper
# foreign-parcel artifact forced stealing creates without real
# parallelism).
bench-imbalance:
	@mkdir -p results
	$(GO) run ./cmd/spraybulk -workload imbalance -n 400000 -threads 2,4 -repeats 3 -min-time 30ms -json results/BENCH_sched.json
	$(GO) run ./cmd/benchdiff -gate -sigma 4 -min-rel 0.75 results/bench_baseline.json results/BENCH_sched.json
	$(GO) run ./cmd/schedcheck results/BENCH_sched.json

# clean removes the transient benchmark artifacts (root-level BENCH
# files are stale copies from before results/ became canonical); the
# tracked results/BENCH_scatter.json reference is left alone.
clean:
	rm -f BENCH_*.json
	rm -f results/BENCH_bulk.json results/BENCH_observability.json results/BENCH_gate.json results/BENCH_plan.json
	$(GO) clean ./...

GO ?= go

.PHONY: ci build vet test race bench-smoke bench-bulk clean

# ci is the tier-1 gate plus a cheap benchmark compile-and-run check.
ci: vet build test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke proves the bulk benchmarks run end to end without timing
# anything meaningful (100 iterations per case).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkBulk' -benchtime 100x .

# bench-bulk produces the each-vs-bulk comparison tables and
# BENCH_bulk.json at a size that finishes in a few minutes.
bench-bulk:
	$(GO) run ./cmd/spraybulk -json BENCH_bulk.json

clean:
	rm -f BENCH_bulk.json
	$(GO) clean ./...

GO ?= go

.PHONY: ci build vet test race race-telemetry bench-smoke overhead-smoke bench-bulk bench-observability clean

# ci is the tier-1 gate plus cheap benchmark compile-and-run checks,
# including the telemetry-off overhead guard.
ci: vet build test race bench-smoke overhead-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-telemetry focuses the race detector on the observability layer:
# counter shards, region timing, panic wrapping, and the export registry.
race-telemetry:
	$(GO) test -race -run 'Telemetry|Instrument|Timing|WorkerPanic|Concurrent' ./internal/telemetry ./internal/par ./internal/core ./internal/memtrack .

# bench-smoke proves the bulk benchmarks run end to end without timing
# anything meaningful (100 iterations per case).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkBulk' -benchtime 100x .

# overhead-smoke asserts the telemetry-off budget (the gated accessor must
# stay within 2% of an ungated replica) and exercises the off/on conv
# benchmark once.
overhead-smoke:
	$(GO) test -run TestTelemetryOffOverhead -count 1 ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverheadConv' -benchtime 20x .

# bench-bulk produces the each-vs-bulk comparison tables and
# BENCH_bulk.json at a size that finishes in a few minutes.
bench-bulk:
	$(GO) run ./cmd/spraybulk -json BENCH_bulk.json

# bench-observability runs the bulk comparison instrumented: every
# measured point carries its strategy counters in the JSON, and a region
# report per point goes to stdout.
bench-observability:
	$(GO) run ./cmd/spraybulk -n 200000 -max-threads 4 -repeats 1 -min-time 20ms -metrics -json BENCH_observability.json

clean:
	rm -f BENCH_bulk.json BENCH_observability.json
	$(GO) clean ./...
